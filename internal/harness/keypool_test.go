package harness

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"pqtls/internal/tls13"
)

// TestFactoryPrimesAndRefills checks the watermark machinery: StartFactory
// primes every suite to the target, Get drains below the low watermark and
// the factory refills back to target, and StopFactory leaves the pooled
// keys available.
func TestFactoryPrimesAndRefills(t *testing.T) {
	pool := NewKeyPool()
	err := pool.StartFactory(FactoryOptions{
		Suites: []string{"kyber768", "x25519"}, Target: 12, LowWater: 6, Batch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, suite := range []string{"kyber768", "x25519"} {
		if n := pool.Len(suite); n != 12 {
			t.Fatalf("%s primed to %d, want 12", suite, n)
		}
	}
	// Drain below the low watermark and wait for the refill.
	for i := 0; i < 8; i++ {
		if pool.Get("kyber768") == nil {
			t.Fatalf("Get %d returned nil with a warm pool", i)
		}
	}
	deadline := 0
	for pool.Len("kyber768") < 12 {
		if deadline++; deadline > 4000 {
			t.Fatalf("factory never refilled: %d of 12", pool.Len("kyber768"))
		}
		// The factory runs on its own goroutine; yield until it catches up.
		time.Sleep(time.Millisecond)
	}
	st := pool.FactoryStats()
	if st.Generated < 24+8 || st.Batches == 0 || st.Hits != 8 {
		t.Fatalf("unexpected stats %+v", st)
	}
	if err := pool.StopFactory(); err != nil {
		t.Fatal(err)
	}
	if pool.Len("kyber768") == 0 {
		t.Fatal("StopFactory discarded pooled keys")
	}
	// Second start/stop cycle must work.
	if err := pool.StartFactory(FactoryOptions{Suites: []string{"kyber768"}}); err != nil {
		t.Fatal(err)
	}
	if err := pool.StopFactory(); err != nil {
		t.Fatal(err)
	}
	if err := pool.StopFactory(); err != nil {
		t.Fatal(err) // stopping a stopped factory is a no-op
	}
}

func TestFactoryRejectsUnknownSuiteAndDoubleStart(t *testing.T) {
	pool := NewKeyPool()
	if err := pool.StartFactory(FactoryOptions{Suites: []string{"no-such-kem"}}); err == nil {
		t.Fatal("unknown suite accepted")
	}
	if err := pool.StartFactory(FactoryOptions{Suites: []string{"x25519"}, Target: 2}); err != nil {
		t.Fatal(err)
	}
	defer pool.StopFactory()
	if err := pool.StartFactory(FactoryOptions{Suites: []string{"x25519"}}); err == nil {
		t.Fatal("double StartFactory accepted")
	}
}

// TestFactoryConcurrentTakeRefillShutdown hammers the pool from many
// consumers while the factory refills underneath and a shutdown lands in
// the middle; run under -race by `make race`. Every handed-out key pair
// must be unique — a pooled keypair reaching two connections would let one
// connection decapsulate the other's traffic secret.
func TestFactoryConcurrentTakeRefillShutdown(t *testing.T) {
	pool := NewKeyPool()
	err := pool.StartFactory(FactoryOptions{
		Suites: []string{"kyber512", "x25519"}, Target: 16, LowWater: 8, Batch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 12
	const takes = 60
	taken := make([][][]byte, goroutines)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			suite := []string{"kyber512", "x25519"}[g%2]
			for i := 0; i < takes; i++ {
				if ks := pool.Get(suite); ks != nil {
					taken[g] = append(taken[g], ks.Pub)
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(g)
	}
	// Shut down mid-take: consumers keep calling Get against a stopping and
	// then stopped factory, which must degrade to nil returns, never block
	// or race.
	time.Sleep(2 * time.Millisecond)
	if err := pool.StopFactory(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	seen := make(map[string]int)
	for g := range taken {
		for _, pub := range taken[g] {
			seen[string(pub)]++
		}
	}
	for _, count := range seen {
		if count > 1 {
			t.Fatalf("double-take: one pooled keypair handed to %d consumers", count)
		}
	}
	if len(seen) == 0 {
		t.Fatal("no keys were ever served; stress test exercised nothing")
	}
}

// TestCampaignDeterministicAcrossWorkersWithFactory is the campaign
// determinism guard for the precompute subsystem: with the key-share
// factory running (including falcon512 rows, whose variable-length
// signatures would expose any DRBG stream shift), the workers=1 and
// workers=8 CSVs must stay byte-identical. This pins RunHandshake's
// modeled-mode bypass — pooled keys must never leak into DRBG-pinned
// samples, where worker scheduling would decide which sample drew from
// the pool.
func TestCampaignDeterministicAcrossWorkersWithFactory(t *testing.T) {
	t.Parallel()
	pool := NewKeyPool()
	err := pool.StartFactory(FactoryOptions{
		Suites: []string{"x25519", "kyber512", "hqc128", "p256_kyber512"},
		Target: 8, LowWater: 4, Batch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.StopFactory()

	csv := func(workers int) []byte {
		specs := determinismGrid(workers)
		for i := range specs {
			specs[i].KeyPool = pool
		}
		results, err := runCampaignGrid(specs, workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteLatenciesCSV(&buf, results); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	sequential := csv(1)
	parallel := csv(8)
	if !bytes.Equal(sequential, parallel) {
		t.Errorf("factory-enabled campaign differs across workers:\n--- workers=1\n%s--- workers=8\n%s",
			sequential, parallel)
	}
	// And the factory must not have fed a single pinned sample: every
	// campaign handshake generates inline under the bypass.
	if st := pool.FactoryStats(); st.Hits != 0 {
		t.Errorf("modeled campaign consumed %d pooled keys; bypass failed", st.Hits)
	}
	// An unpinned run with the same pool does draw from it.
	if _, err := RunHandshake(RunOptions{
		KEM: "kyber512", Sig: "dilithium2", Link: ScenarioTestbed,
		Buffer: tls13.BufferImmediate, Seed: 3, KeyPool: pool,
	}); err != nil {
		t.Fatal(err)
	}
	if st := pool.FactoryStats(); st.Hits != 1 {
		t.Errorf("unpinned run did not use the pool (hits=%d)", st.Hits)
	}
}
