package harness

import (
	"testing"

	"pqtls/internal/netsim"
	"pqtls/internal/tls13"
)

// Wire volumes and packet counts are protocol-determined: two runs of the
// same suite with the same seed must agree byte-for-byte, and even across
// seeds the volumes on a loss-free link must be identical. This is what
// makes the Table 2 data columns reproducible.
func TestWireVolumeDeterminism(t *testing.T) {
	t.Parallel()
	run := func(seed int64) *HandshakeResult {
		res, err := RunHandshake(RunOptions{
			KEM: "kyber512", Sig: "rsa:2048", Link: ScenarioTestbed,
			Buffer: tls13.BufferImmediate, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(2)
	if a.ClientBytes != b.ClientBytes || a.ServerBytes != b.ServerBytes {
		t.Errorf("loss-free volumes differ across seeds: %d/%d vs %d/%d",
			a.ClientBytes, a.ServerBytes, b.ClientBytes, b.ServerBytes)
	}
	if a.ClientPackets != b.ClientPackets || a.ServerPackets != b.ServerPackets {
		t.Errorf("loss-free packet counts differ: %d/%d vs %d/%d",
			a.ClientPackets, a.ServerPackets, b.ClientPackets, b.ServerPackets)
	}
}

// Under loss, the same seed must reproduce the same retransmission pattern
// (and therefore the same wire volume).
func TestLossDeterminismPerSeed(t *testing.T) {
	t.Parallel()
	run := func() *HandshakeResult {
		res, err := RunHandshake(RunOptions{
			KEM: "x25519", Sig: "rsa:2048", Link: netsim.ScenarioLTEM,
			Buffer: tls13.BufferImmediate, Seed: 77,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.ClientBytes != b.ClientBytes || a.ServerBytes != b.ServerBytes {
		t.Errorf("same-seed lossy volumes differ: %d/%d vs %d/%d",
			a.ClientBytes, a.ServerBytes, b.ClientBytes, b.ServerBytes)
	}
	if a.Phases.Total() != b.Phases.Total() {
		// Network time is fully virtual, so even the latency is exact up
		// to real crypto-compute jitter; only assert the network part.
		diff := a.Phases.Total() - b.Phases.Total()
		if diff < 0 {
			diff = -diff
		}
		if diff > a.Phases.Total()/2 {
			t.Errorf("same-seed latencies wildly differ: %v vs %v",
				a.Phases.Total(), b.Phases.Total())
		}
	}
}

// A resumed handshake must never ship a certificate, for any SA.
func TestResumedFlightHasNoCertificate(t *testing.T) {
	t.Parallel()
	for _, sigName := range []string{"rsa:2048", "dilithium2"} {
		full, err := RunHandshake(RunOptions{
			KEM: "kyber512", Sig: sigName, Link: ScenarioTestbed,
			Buffer: tls13.BufferImmediate, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunHandshake(RunOptions{
			KEM: "kyber512", Sig: sigName, Link: ScenarioTestbed,
			Buffer: tls13.BufferImmediate, Seed: 3, Resume: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.ServerBytes >= full.ServerBytes {
			t.Errorf("%s: resumed flight (%dB) not smaller than full (%dB)",
				sigName, res.ServerBytes, full.ServerBytes)
		}
		if res.ServerBytes > 2000 {
			t.Errorf("%s: resumed server flight %dB, certificate not skipped?",
				sigName, res.ServerBytes)
		}
	}
}

// Chain depth monotonically increases the server flight.
func TestChainDepthMonotonic(t *testing.T) {
	t.Parallel()
	var prev int
	for depth := 1; depth <= 3; depth++ {
		res, err := RunHandshake(RunOptions{
			KEM: "x25519", Sig: "falcon512", Link: ScenarioTestbed,
			Buffer: tls13.BufferImmediate, Seed: 4, ChainDepth: depth,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.ServerBytes <= prev {
			t.Errorf("depth %d: server bytes %d not above depth %d's %d",
				depth, res.ServerBytes, depth-1, prev)
		}
		prev = res.ServerBytes
	}
}

// The HRR fallback costs a round trip under a delayed link.
func TestHRRFallbackCostsRTT(t *testing.T) {
	t.Parallel()
	link := netsim.LinkConfig{Name: "rtt", RTT: 100 * 1000 * 1000} // 100ms
	direct, err := RunHandshake(RunOptions{
		KEM: "kyber512", Sig: "rsa:2048", Link: link,
		Buffer: tls13.BufferImmediate, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	fallback, err := RunHandshake(RunOptions{
		KEM: "kyber512", Sig: "rsa:2048", Link: link,
		Buffer: tls13.BufferImmediate, Seed: 5,
		ClientKEM: "x25519", ClientSupported: []string{"kyber512"},
	})
	if err != nil {
		t.Fatal(err)
	}
	extra := fallback.Phases.Total() - direct.Phases.Total()
	if extra < 80*1000*1000 || extra > 150*1000*1000 {
		t.Errorf("HRR penalty %v, want ~1 RTT (100ms)", extra)
	}
}
