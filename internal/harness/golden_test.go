package harness

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pqtls/internal/nettap"
	"pqtls/internal/tls13"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// testDRBG is SHA-256 in counter mode — a deterministic stand-in for
// crypto/rand so two handshakes draw identical randomness.
type testDRBG struct {
	seed [32]byte
	ctr  uint64
	buf  []byte
}

func newTestDRBG(seed string) *testDRBG {
	d := &testDRBG{}
	copy(d.seed[:], seed)
	return d
}

func (d *testDRBG) Read(p []byte) (int, error) {
	for len(d.buf) < len(p) {
		var block [40]byte
		copy(block[:32], d.seed[:])
		binary.BigEndian.PutUint64(block[32:], d.ctr)
		d.ctr++
		sum := sha256.Sum256(block[:])
		d.buf = append(d.buf, sum[:]...)
	}
	n := copy(p, d.buf)
	d.buf = d.buf[n:]
	return n, nil
}

// capturePcap runs one handshake with a seeded random stream and returns the
// raw pcap bytes of the capture.
func capturePcap(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	pw, err := nettap.NewPcapWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// kyber512/dilithium2: both have deterministic signing/encaps given the
	// seeded stream (RSA-PSS and ECDSA would inject signature-size jitter).
	_, err = RunHandshake(RunOptions{
		KEM: "kyber512", Sig: "dilithium2", Link: ScenarioTestbed,
		Buffer: tls13.BufferImmediate, Seed: 7, Pcap: pw,
		Rand: newTestDRBG("pcap-determinism-seed"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if pw.Err() != nil {
		t.Fatal(pw.Err())
	}
	return buf.Bytes()
}

// TestHandshakePcapDeterministic pins the full wire transcript: with a
// seeded random stream and modeled timing, two handshakes must produce
// byte-identical pcap captures — every TCP segment, TLS record and virtual
// timestamp included. This is the capture-level analogue of the CSV
// determinism guarantee.
func TestHandshakePcapDeterministic(t *testing.T) {
	t.Parallel()
	first := capturePcap(t)
	second := capturePcap(t)
	if !bytes.Equal(first, second) {
		t.Errorf("two seeded handshake captures differ (%d vs %d bytes)", len(first), len(second))
	}
	frames, _, err := nettap.ReadPcap(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) < 8 {
		t.Errorf("capture has only %d frames, want a full handshake", len(frames))
	}
}

// TestRenderTable2Golden pins the human-readable table rendering (column
// set, alignment, number formatting) against a checked-in golden file.
func TestRenderTable2Golden(t *testing.T) {
	t.Parallel()
	results := []*CampaignResult{
		{KEM: "x25519", Sig: "rsa:2048", PartAMedian: 120200 * time.Nanosecond,
			PartBMedian: 1280300 * time.Nanosecond, Handshakes60s: 21346,
			ClientBytes: 706, ServerBytes: 1559},
		{KEM: "kyber512", Sig: "rsa:2048", PartAMedian: 210700 * time.Nanosecond,
			PartBMedian: 971500 * time.Nanosecond, Handshakes60s: 26511,
			ClientBytes: 1474, ServerBytes: 7843},
		{KEM: "p384_kyber768", Sig: "rsa:2048", PartAMedian: 1536000 * time.Nanosecond,
			PartBMedian: 2048000 * time.Nanosecond, Handshakes60s: 9000,
			ClientBytes: 1700, ServerBytes: 8000},
	}
	var kemBuf bytes.Buffer
	if err := RenderTable2(&kemBuf, results, true); err != nil {
		t.Fatal(err)
	}
	var sigBuf bytes.Buffer
	if err := RenderTable2(&sigBuf, results, false); err != nil {
		t.Fatal(err)
	}
	got := append(append([]byte{}, kemBuf.Bytes()...), sigBuf.Bytes()...)

	golden := filepath.Join("testdata", "table2.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("table rendering changed; run with -update if intended.\n--- got\n%s--- want\n%s", got, want)
	}
}
