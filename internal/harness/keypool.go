package harness

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"pqtls/internal/kem"
	"pqtls/internal/tls13"
)

// KeyPool holds pre-generated client KEM key pairs. Campaigns with many
// samples of the same suite spend a large share of their real compute on
// ephemeral keygen (BIKE's ring inversion, Falcon-free suites still pay
// Kyber/HQC keygen per sample); a pool generates them up front across the
// worker pool and hands one out per handshake. Latency results are
// unchanged — the modeled keygen cost is charged to the virtual clock
// whether or not the key came from the pool.
//
// Beyond the one-shot Fill, StartFactory turns the pool into an async
// precompute subsystem: a background goroutine per suite keeps the pool
// between a low watermark and a target level, generating keys in batches
// through the KEM's amortized batch keygen (one multi-sponge pass across
// the batch for ML-KEM). Get never blocks — a drained pool returns nil and
// the handshake generates its key inline while the factory refills behind
// it.
type KeyPool struct {
	mu sync.Mutex
	m  map[string][]*tls13.KeyShare

	hits, misses atomic.Uint64

	factory *factory // nil unless StartFactory is running
}

// NewKeyPool returns an empty pool.
func NewKeyPool() *KeyPool {
	return &KeyPool{m: map[string][]*tls13.KeyShare{}}
}

// Fill pre-generates n key pairs for kemName using up to workers goroutines.
func (p *KeyPool) Fill(kemName string, n, workers int) error {
	k, err := kem.ByName(kemName)
	if err != nil {
		return err
	}
	shares := make([]*tls13.KeyShare, n)
	if err := forEach(n, workers, func(i int) error {
		pub, priv, err := k.GenerateKey(nil)
		if err != nil {
			return err
		}
		shares[i] = &tls13.KeyShare{Pub: pub, Priv: priv}
		return nil
	}); err != nil {
		return err
	}
	p.mu.Lock()
	p.m[kemName] = append(p.m[kemName], shares...)
	p.mu.Unlock()
	return nil
}

// Get pops a pre-generated key pair for kemName, or returns nil when the
// pool has none left (the handshake then generates one itself). Each pair
// is handed out exactly once. When a factory is running and the suite's
// level falls below the low watermark, Get nudges the factory awake; it
// never waits for the refill.
func (p *KeyPool) Get(kemName string) *tls13.KeyShare {
	p.mu.Lock()
	shares := p.m[kemName]
	if len(shares) == 0 {
		f := p.factory
		p.mu.Unlock()
		p.misses.Add(1)
		if f != nil {
			f.nudge(kemName)
		}
		return nil
	}
	ks := shares[len(shares)-1]
	p.m[kemName] = shares[:len(shares)-1]
	left := len(shares) - 1
	f := p.factory
	p.mu.Unlock()
	p.hits.Add(1)
	if f != nil && left < f.low {
		f.nudge(kemName)
	}
	return ks
}

// Len reports how many pairs remain pooled for kemName.
func (p *KeyPool) Len(kemName string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.m[kemName])
}

// FactoryOptions configures the background key-share factory.
type FactoryOptions struct {
	// Suites are the KEM names to keep warm.
	Suites []string
	// Target is the per-suite pool level the factory refills to (default 64).
	Target int
	// LowWater is the level that triggers a refill (default Target/4).
	LowWater int
	// Batch is the number of key pairs generated per factory wake-up; each
	// batch runs through the KEM's batched keygen, sharing one sha3 pass
	// across the batch for ML-KEM (default 16).
	Batch int
}

// FactoryStats is a snapshot of the factory and pool counters.
type FactoryStats struct {
	// Generated counts key pairs produced by the factory; Batches counts
	// the batch-keygen calls that produced them.
	Generated, Batches uint64
	// Hits counts Get calls served from the pool; Misses counts Get calls
	// that found it empty (inline keygen fallback).
	Hits, Misses uint64
}

// factory is the running state of the background refiller.
type factory struct {
	stop chan struct{}
	wg   sync.WaitGroup
	wake map[string]chan struct{}
	low  int

	generated, batches atomic.Uint64

	errMu    sync.Mutex
	firstErr error // first keygen error, if any
}

func (f *factory) recordErr(err error) {
	f.errMu.Lock()
	if f.firstErr == nil {
		f.firstErr = err
	}
	f.errMu.Unlock()
}

// nudge wakes the suite's refill goroutine without blocking.
func (f *factory) nudge(kemName string) {
	ch, ok := f.wake[kemName]
	if !ok {
		return
	}
	select {
	case ch <- struct{}{}:
	default:
	}
}

// StartFactory launches one refill goroutine per suite and blocks until
// every suite has been primed to its target level. It errors if a factory
// is already running or a suite name is unknown.
func (p *KeyPool) StartFactory(opts FactoryOptions) error {
	if opts.Target <= 0 {
		opts.Target = 64
	}
	if opts.LowWater <= 0 {
		opts.LowWater = opts.Target / 4
	}
	if opts.Batch <= 0 {
		opts.Batch = 16
	}
	if len(opts.Suites) == 0 {
		return errors.New("harness: factory needs at least one suite")
	}
	kems := make(map[string]kem.KEM, len(opts.Suites))
	for _, name := range opts.Suites {
		k, err := kem.ByName(name)
		if err != nil {
			return err
		}
		kems[name] = k
	}
	f := &factory{
		stop: make(chan struct{}),
		wake: make(map[string]chan struct{}, len(opts.Suites)),
		low:  opts.LowWater,
	}
	p.mu.Lock()
	if p.factory != nil {
		p.mu.Unlock()
		return errors.New("harness: factory already running")
	}
	p.factory = f
	p.mu.Unlock()

	// Prime synchronously so callers see a warm pool, then hand each suite
	// to its refill goroutine.
	for name, k := range kems {
		if err := p.refill(f, name, k, opts.Target, opts.Batch); err != nil {
			p.mu.Lock()
			p.factory = nil
			p.mu.Unlock()
			return fmt.Errorf("harness: priming %s: %w", name, err)
		}
		f.wake[name] = make(chan struct{}, 1)
	}
	for name, k := range kems {
		f.wg.Add(1)
		go p.factoryLoop(f, name, k, opts.Target, opts.Batch)
	}
	return nil
}

// refill tops the suite up to target in batch-sized steps, stopping early
// on factory shutdown.
func (p *KeyPool) refill(f *factory, kemName string, k kem.KEM, target, batch int) error {
	for {
		select {
		case <-f.stop:
			return nil
		default:
		}
		n := target - p.Len(kemName)
		if n <= 0 {
			return nil
		}
		if n > batch {
			n = batch
		}
		pubs, privs, err := kem.GenerateKeyBatch(k, nil, n)
		if err != nil {
			return err
		}
		shares := make([]*tls13.KeyShare, n)
		for i := range shares {
			shares[i] = &tls13.KeyShare{Pub: pubs[i], Priv: privs[i]}
		}
		p.mu.Lock()
		p.m[kemName] = append(p.m[kemName], shares...)
		p.mu.Unlock()
		f.generated.Add(uint64(n))
		f.batches.Add(1)
	}
}

func (p *KeyPool) factoryLoop(f *factory, kemName string, k kem.KEM, target, batch int) {
	defer f.wg.Done()
	for {
		select {
		case <-f.stop:
			return
		case <-f.wake[kemName]:
		}
		if err := p.refill(f, kemName, k, target, batch); err != nil {
			f.recordErr(err)
			return
		}
	}
}

// StopFactory shuts the factory down gracefully: refill goroutines finish
// the batch in flight, then exit. Pooled keys remain available to Get. It
// returns the first keygen error the factory hit, if any, and is a no-op
// when no factory is running.
func (p *KeyPool) StopFactory() error {
	p.mu.Lock()
	f := p.factory
	p.factory = nil
	p.mu.Unlock()
	if f == nil {
		return nil
	}
	close(f.stop)
	f.wg.Wait()
	f.errMu.Lock()
	defer f.errMu.Unlock()
	return f.firstErr
}

// FactoryStats snapshots the pool and factory counters. Counters persist
// across StartFactory/StopFactory cycles except Generated/Batches, which
// belong to the running (or most recently observed) factory.
func (p *KeyPool) FactoryStats() FactoryStats {
	s := FactoryStats{
		Hits:   p.hits.Load(),
		Misses: p.misses.Load(),
	}
	p.mu.Lock()
	f := p.factory
	p.mu.Unlock()
	if f != nil {
		s.Generated = f.generated.Load()
		s.Batches = f.batches.Load()
	}
	return s
}
