package harness

import (
	"sync"

	"pqtls/internal/kem"
	"pqtls/internal/tls13"
)

// KeyPool holds pre-generated client KEM key pairs. Campaigns with many
// samples of the same suite spend a large share of their real compute on
// ephemeral keygen (BIKE's ring inversion, Falcon-free suites still pay
// Kyber/HQC keygen per sample); a pool generates them up front across the
// worker pool and hands one out per handshake. Latency results are
// unchanged — the modeled keygen cost is charged to the virtual clock
// whether or not the key came from the pool.
type KeyPool struct {
	mu sync.Mutex
	m  map[string][]*tls13.KeyShare
}

// NewKeyPool returns an empty pool.
func NewKeyPool() *KeyPool {
	return &KeyPool{m: map[string][]*tls13.KeyShare{}}
}

// Fill pre-generates n key pairs for kemName using up to workers goroutines.
func (p *KeyPool) Fill(kemName string, n, workers int) error {
	k, err := kem.ByName(kemName)
	if err != nil {
		return err
	}
	shares := make([]*tls13.KeyShare, n)
	if err := forEach(n, workers, func(i int) error {
		pub, priv, err := k.GenerateKey(nil)
		if err != nil {
			return err
		}
		shares[i] = &tls13.KeyShare{Pub: pub, Priv: priv}
		return nil
	}); err != nil {
		return err
	}
	p.mu.Lock()
	p.m[kemName] = append(p.m[kemName], shares...)
	p.mu.Unlock()
	return nil
}

// Get pops a pre-generated key pair for kemName, or returns nil when the
// pool has none left (the handshake then generates one itself).
func (p *KeyPool) Get(kemName string) *tls13.KeyShare {
	p.mu.Lock()
	defer p.mu.Unlock()
	shares := p.m[kemName]
	if len(shares) == 0 {
		return nil
	}
	ks := shares[len(shares)-1]
	p.m[kemName] = shares[:len(shares)-1]
	return ks
}

// Len reports how many pairs remain pooled for kemName.
func (p *KeyPool) Len(kemName string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.m[kemName])
}
