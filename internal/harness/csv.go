package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// CSV emitters mirroring the paper artifact's evaluation outputs: the
// published scripts produce a latencies.csv whose partAMedian, partBMedian
// and partAllMedian columns feed Tables 2 and 4, and a deviations.csv that
// feeds Figure 3.

// WriteLatenciesCSV writes campaign rows in the artifact's latencies.csv
// column layout.
func WriteLatenciesCSV(w io.Writer, results []*CampaignResult) error {
	if _, err := fmt.Fprintln(w,
		"kem,sig,scenario,samples,partAMedian,partBMedian,partAllMedian,handshakes60s,clientBytes,serverBytes,clientPackets,serverPackets"); err != nil {
		return err
	}
	for _, r := range results {
		_, err := fmt.Fprintf(w, "%s,%s,%s,%d,%s,%s,%s,%d,%d,%d,%d,%d\n",
			csvEscape(r.KEM), csvEscape(r.Sig), csvEscape(r.Link), r.Samples,
			msCSV(r.PartAMedian), msCSV(r.PartBMedian), msCSV(r.TotalMedian),
			r.Handshakes60s, r.ClientBytes, r.ServerBytes, r.ClientPackets, r.ServerPackets)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteDeviationsCSV writes Figure 3 cells in the artifact's
// deviations.csv layout.
func WriteDeviationsCSV(w io.Writer, devs []Deviation) error {
	if _, err := fmt.Fprintln(w, "level,kem,sig,expected,measured,deviation"); err != nil {
		return err
	}
	for _, d := range devs {
		_, err := fmt.Fprintf(w, "%s,%s,%s,%s,%s,%s\n",
			csvEscape(d.Level), csvEscape(d.KEM), csvEscape(d.Sig),
			msCSV(d.Expected), msCSV(d.Measured), msCSV(d.Deviation))
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteScenariosCSV writes Table 4 rows: one line per suite and scenario.
// Scenarios are emitted in sorted order so the output is deterministic
// (row.Latency is a map).
func WriteScenariosCSV(w io.Writer, rows []ScenarioRow) error {
	if _, err := fmt.Fprintln(w, "kem,sig,scenario,partAllMedian"); err != nil {
		return err
	}
	for _, row := range rows {
		scenarios := make([]string, 0, len(row.Latency))
		for scenario := range row.Latency {
			scenarios = append(scenarios, scenario)
		}
		sort.Strings(scenarios)
		for _, scenario := range scenarios {
			_, err := fmt.Fprintf(w, "%s,%s,%s,%s\n",
				csvEscape(row.KEM), csvEscape(row.Sig), csvEscape(scenario), msCSV(row.Latency[scenario]))
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// msCSV renders a duration as fractional milliseconds.
func msCSV(d time.Duration) string {
	return fmt.Sprintf("%.4f", float64(d)/float64(time.Millisecond))
}

// csvEscape guards against separators in names (none of ours contain any,
// but the emitter should not silently corrupt output if one ever does).
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
