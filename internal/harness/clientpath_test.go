package harness

import (
	"bytes"
	"testing"

	"pqtls/internal/live"
	"pqtls/internal/loadgen"
	"pqtls/internal/tls13"
)

// TestCampaignDeterministicAcrossWorkersWithClientPath is the campaign
// determinism guard for the client-side fast path: with a batching
// verification pool and a batching encapsulation pool attached to every
// sample, the workers=1 and workers=8 CSVs must stay byte-identical. This
// pins RunHandshake's bypass for both hooks — pooled crypto draws on
// crypto/rand and resolves in scheduling-dependent order, so it must never
// reach a DRBG-pinned sample.
func TestCampaignDeterministicAcrossWorkersWithClientPath(t *testing.T) {
	t.Parallel()
	vp := loadgen.NewVerifyPool(2, 8, 0)
	defer vp.Close()
	ep := live.NewEncapPool(2, 8, 0)
	defer ep.Close()

	csv := func(workers int) []byte {
		specs := determinismGrid(workers)
		for i := range specs {
			specs[i].CVVerifier = vp
			specs[i].Encapsulator = ep
		}
		results, err := runCampaignGrid(specs, workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteLatenciesCSV(&buf, results); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	sequential := csv(1)
	parallel := csv(8)
	if !bytes.Equal(sequential, parallel) {
		t.Errorf("pool-enabled campaign differs across workers:\n--- workers=1\n%s--- workers=8\n%s",
			sequential, parallel)
	}
	// The pools must not have touched a single pinned sample: every campaign
	// handshake verifies and encapsulates inline under the bypass.
	if st := vp.Stats(); st.Verifies != 0 {
		t.Errorf("modeled campaign routed %d verifications through the pool; bypass failed", st.Verifies)
	}
	if st := ep.Stats(); st.Encaps != 0 {
		t.Errorf("modeled campaign routed %d encapsulations through the pool; bypass failed", st.Encaps)
	}

	// An unpinned run with the same pools does route through both.
	if _, err := RunHandshake(RunOptions{
		KEM: "kyber512", Sig: "dilithium2", Link: ScenarioTestbed,
		Buffer: tls13.BufferImmediate, Seed: 3,
		CVVerifier: vp, Encapsulator: ep,
	}); err != nil {
		t.Fatal(err)
	}
	if st := vp.Stats(); st.Verifies != 1 {
		t.Errorf("unpinned run did not use the verify pool (verifies=%d)", st.Verifies)
	}
	if st := ep.Stats(); st.Encaps != 1 {
		t.Errorf("unpinned run did not use the encap pool (encaps=%d)", st.Encaps)
	}
}
