package harness

import (
	"sort"
	"sync"
	"time"

	"pqtls/internal/perf"
)

// Streaming campaign aggregation. The grid used to buffer every sample of
// every cell ([][]*sampleResult) until the whole campaign finished, which
// makes memory grow linearly with Samples — hostile to the 100k-sample
// sweeps the saturate harness wants. A cellAggregator instead folds each
// sample into the row the moment it completes, in whatever order the worker
// pool delivers them, and retains only value-frequency maps.
//
// Every aggregate the row reports is either order-independent by algebra
// (sums: CPU, cycle mean, profiler span totals) or an exact order statistic
// (medians), so "streaming" loses nothing: the medians are recovered from
// counting distributions by a cumulative walk that reproduces stats.Median
// bit-for-bit, including its even-count two-middle average with integer
// division. Memory per cell is O(distinct values), not O(samples) — and the
// modeled pipeline emits a handful of distinct values per metric, so cells
// stay constant-size while samples scale unbounded.

// countingDist is a frequency map over duration-valued observations. It
// stands in for a sorted sample slice: median() is an exact order-statistic
// walk, identical to stats.Median over the expanded multiset.
type countingDist struct {
	counts map[time.Duration]uint64
	n      uint64
}

func newCountingDist() *countingDist {
	return &countingDist{counts: make(map[time.Duration]uint64)}
}

func (d *countingDist) add(v time.Duration) {
	d.counts[v]++
	d.n++
}

// kth returns the 0-indexed k-th smallest observation.
func (d *countingDist) kth(keys []time.Duration, k uint64) time.Duration {
	var cum uint64
	for _, key := range keys {
		cum += d.counts[key]
		if cum > k {
			return key
		}
	}
	return keys[len(keys)-1]
}

// median reproduces stats.Median over the multiset: the middle element for
// odd counts, the integer-divided average of the two middles for even.
func (d *countingDist) median() time.Duration {
	if d.n == 0 {
		return 0
	}
	keys := make([]time.Duration, 0, len(d.counts))
	for k := range d.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if d.n%2 == 1 {
		return d.kth(keys, d.n/2)
	}
	return (d.kth(keys, d.n/2-1) + d.kth(keys, d.n/2)) / 2
}

// distinct reports how many distinct values the distribution holds — the
// quantity that bounds its memory, independent of how many samples fed it.
func (d *countingDist) distinct() int { return len(d.counts) }

// cellAggregator streams one grid cell's samples into a table row.
type cellAggregator struct {
	mu sync.Mutex
	n  uint64

	partA, partB, total    *countingDist
	cBytes, sBytes         *countingDist
	cPkts, sPkts           *countingDist
	cycleSum, cCPU, sCPU   time.Duration
	clientProf, serverProf *perf.Profiler
}

func newCellAggregator(profile bool) *cellAggregator {
	a := &cellAggregator{
		partA: newCountingDist(), partB: newCountingDist(), total: newCountingDist(),
		cBytes: newCountingDist(), sBytes: newCountingDist(),
		cPkts: newCountingDist(), sPkts: newCountingDist(),
	}
	if profile {
		a.clientProf = perf.NewProfiler()
		a.serverProf = perf.NewProfiler()
	}
	return a
}

// add folds one sample into the cell and releases it: nothing per-sample is
// retained. Safe for concurrent use by the grid's worker pool; profiler
// merging commutes (span-wise addition), so arrival order is irrelevant.
func (a *cellAggregator) add(s *sampleResult) {
	a.mu.Lock()
	defer a.mu.Unlock()
	res := s.res
	a.n++
	a.partA.add(res.Phases.PartA)
	a.partB.add(res.Phases.PartB)
	a.total.add(res.Phases.Total())
	a.cBytes.add(time.Duration(res.ClientBytes))
	a.sBytes.add(time.Duration(res.ServerBytes))
	a.cPkts.add(time.Duration(res.ClientPackets))
	a.sPkts.add(time.Duration(res.ServerPackets))
	a.cycleSum += res.Cycle
	a.cCPU += res.ClientCPU
	a.sCPU += res.ServerCPU
	if a.clientProf != nil {
		a.clientProf.Merge(s.clientProf)
		a.serverProf.Merge(s.serverProf)
	}
}

// finalize produces the row. It mirrors aggregateCampaign exactly: medians
// by order statistic, CPU means over opts.Samples, and the 60-second
// extrapolation from the mean cycle.
func (a *cellAggregator) finalize(opts CampaignOptions) *CampaignResult {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := &CampaignResult{
		KEM: opts.KEM, Sig: opts.Sig, Link: opts.Link.Name, Samples: opts.Samples,
		PartAMedian:   a.partA.median(),
		PartBMedian:   a.partB.median(),
		TotalMedian:   a.total.median(),
		ClientBytes:   int(a.cBytes.median()),
		ServerBytes:   int(a.sBytes.median()),
		ClientPackets: int(a.cPkts.median()),
		ServerPackets: int(a.sPkts.median()),
		ClientCPU:     a.cCPU / time.Duration(opts.Samples),
		ServerCPU:     a.sCPU / time.Duration(opts.Samples),
	}
	if a.n > 0 {
		if meanCycle := a.cycleSum / time.Duration(a.n); meanCycle > 0 {
			out.Handshakes60s = int(MeasurementPeriod / meanCycle)
		}
	}
	if a.clientProf != nil {
		out.ClientProfile = a.clientProf.Snapshot()
		out.ServerProfile = a.serverProf.Snapshot()
	}
	return out
}

// maxDistinct reports the largest distinct-value count across the cell's
// distributions — the memory bound tests pin this, not the sample count.
func (a *cellAggregator) maxDistinct() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	m := 0
	for _, d := range []*countingDist{a.partA, a.partB, a.total, a.cBytes, a.sBytes, a.cPkts, a.sPkts} {
		if d.distinct() > m {
			m = d.distinct()
		}
	}
	return m
}
