package harness

import (
	"runtime"
	"sync"
)

// Parallel campaign execution. Campaigns fan individual (suite, sample)
// tasks out across a bounded worker pool; because samples are seeded
// deterministically and modeled timing (TimingModel) removes host jitter
// from the virtual clocks, the aggregated results are byte-identical to a
// sequential run — workers only change wall-clock time, never output.

// DefaultWorkers is the worker count used when Workers is 0: one per
// available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// forEach runs fn(i) for i in [0, n) across min(workers, n) goroutines and
// returns the error of the lowest index that failed (matching what a
// sequential loop would have reported first). It always waits for all
// spawned work to finish.
func forEach(n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		errIdx   int
		next     int
	)
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n || firstErr != nil {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil || i < errIdx {
			firstErr, errIdx = err, i
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := take()
				if !ok {
					return
				}
				if err := fn(i); err != nil {
					fail(i, err)
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}

// runCampaignGrid executes many campaigns through one flat worker pool:
// every (campaign, sample) pair is one task, so a slow suite (SPHINCS+,
// BIKE) cannot serialize the whole grid behind it. Samples stream into one
// cellAggregator per spec the moment they complete and are then dropped, so
// memory per cell is bounded by distinct metric values, not Samples. Every
// aggregate is order-independent (sums and exact order-statistic medians),
// making the output identical to running each campaign sequentially.
func runCampaignGrid(specs []CampaignOptions, workers int) ([]*CampaignResult, error) {
	for i := range specs {
		normalizeCampaign(&specs[i])
		if specs[i].Timing == TimingReal {
			// Measured timing is meaningless under concurrent load.
			workers = 1
		}
	}
	// Flatten to (spec, sample) tasks.
	type task struct{ spec, sample int }
	var tasks []task
	aggs := make([]*cellAggregator, len(specs))
	for si := range specs {
		aggs[si] = newCellAggregator(specs[si].Profile)
		for i := 0; i < specs[si].Samples; i++ {
			tasks = append(tasks, task{spec: si, sample: i})
		}
	}
	err := forEach(len(tasks), workers, func(ti int) error {
		t := tasks[ti]
		res, err := runCampaignSample(specs[t.spec], t.sample)
		if err != nil {
			return err
		}
		aggs[t.spec].add(res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]*CampaignResult, len(specs))
	for si := range specs {
		out[si] = aggs[si].finalize(specs[si])
	}
	return out, nil
}
