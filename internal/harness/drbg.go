package harness

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// sampleDRBG is SHA-256 in counter mode: a deterministic replacement for
// crypto/rand scoped to one campaign sample. Every sample derives its
// stream from its (suite, scenario, seed) coordinate, so endpoint
// randomness — key shares, nonces, and the variable-length randomized
// signatures (ECDSA, RSA-PSS) that otherwise jitter flight sizes by a few
// bytes — is reproducible regardless of worker scheduling or process
// lifetime. This is what keeps regenerated tables byte-identical between
// -workers 1 and -workers 8. The harness measures performance over an
// emulated network; it is not a production TLS endpoint, so deterministic
// randomness is a feature here, not a vulnerability.
type sampleDRBG struct {
	seed [32]byte
	ctr  uint64
	buf  []byte
}

// newSampleDRBG derives a stream from the sample's campaign coordinate.
func newSampleDRBG(kem, sig, link string, seed int64) *sampleDRBG {
	return newDRBG(fmt.Sprintf("pqtls-sample|%s|%s|%s|%d", kem, sig, link, seed))
}

// newCredentialDRBG derives the stream that keys one credential-cache
// entry's CA hierarchy. Seeding the key generation (together with the sig
// package's derandomized signing) makes certificate chains identical from
// process to process, so regenerated tables cannot pick up per-run
// signature-length jitter from the chain.
func newCredentialDRBG(sigName string, depth int) *sampleDRBG {
	return newDRBG(fmt.Sprintf("pqtls-credentials|%s|%d", sigName, depth))
}

func newDRBG(label string) *sampleDRBG {
	h := sha256.New()
	h.Write([]byte(label))
	d := &sampleDRBG{}
	h.Sum(d.seed[:0])
	return d
}

func (d *sampleDRBG) Read(p []byte) (int, error) {
	for len(d.buf) < len(p) {
		var block [40]byte
		copy(block[:32], d.seed[:])
		binary.BigEndian.PutUint64(block[32:], d.ctr)
		d.ctr++
		sum := sha256.Sum256(block[:])
		d.buf = append(d.buf, sum[:]...)
	}
	n := copy(p, d.buf)
	d.buf = d.buf[n:]
	return n, nil
}
