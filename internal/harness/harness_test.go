package harness

import (
	"testing"
	"time"

	"pqtls/internal/netsim"
	"pqtls/internal/perf"
	"pqtls/internal/tls13"
)

func TestRunHandshakeBaseline(t *testing.T) {
	t.Parallel()
	res, err := RunHandshake(RunOptions{
		KEM: "x25519", Sig: "rsa:2048", Link: ScenarioTestbed,
		Buffer: tls13.BufferImmediate, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases.PartA <= 0 || res.Phases.PartB <= 0 {
		t.Errorf("phases: A=%v B=%v, want positive", res.Phases.PartA, res.Phases.PartB)
	}
	if res.Phases.Total() > 100*time.Millisecond {
		t.Errorf("baseline handshake took %v, want a few ms", res.Phases.Total())
	}
	if res.ClientBytes < 400 || res.ClientBytes > 2000 {
		t.Errorf("client bytes = %d, want x25519-scale (~700)", res.ClientBytes)
	}
	if res.ServerBytes < 900 || res.ServerBytes > 4000 {
		t.Errorf("server bytes = %d, want rsa:2048-scale (~1500)", res.ServerBytes)
	}
	if res.Cycle <= res.Phases.Total() {
		t.Error("cycle must exceed the tap-observed handshake duration")
	}
}

// PQ suites must move more data, in the right direction.
func TestDataVolumeShape(t *testing.T) {
	t.Parallel()
	base, err := RunHandshake(RunOptions{KEM: "x25519", Sig: "rsa:2048", Link: ScenarioTestbed, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hqc, err := RunHandshake(RunOptions{KEM: "hqc128", Sig: "rsa:2048", Link: ScenarioTestbed, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// HQC-128: client sends the 2249B public key, server the 4481B ct.
	if hqc.ClientBytes < base.ClientBytes+2000 {
		t.Errorf("hqc128 client bytes %d vs base %d: want ~+2.2kB", hqc.ClientBytes, base.ClientBytes)
	}
	if hqc.ServerBytes < base.ServerBytes+4000 {
		t.Errorf("hqc128 server bytes %d vs base %d: want ~+4.5kB", hqc.ServerBytes, base.ServerBytes)
	}
	dil, err := RunHandshake(RunOptions{KEM: "x25519", Sig: "dilithium2", Link: ScenarioTestbed, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Dilithium2: cert (pk 1312 + sig 2420) + CV sig 2420 ≈ +5.5kB server.
	if dil.ServerBytes < base.ServerBytes+4500 {
		t.Errorf("dilithium2 server bytes %d vs base %d: want ~+5.5kB", dil.ServerBytes, base.ServerBytes)
	}
}

func TestCampaignAggregation(t *testing.T) {
	t.Parallel()
	r, err := RunCampaign(CampaignOptions{
		KEM: "kyber512", Sig: "rsa:2048", Link: ScenarioTestbed,
		Buffer: tls13.BufferImmediate, Samples: 5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Samples != 5 || r.Handshakes60s <= 0 {
		t.Errorf("samples=%d handshakes60s=%d", r.Samples, r.Handshakes60s)
	}
	if r.TotalMedian < r.PartAMedian {
		t.Error("total median below part A")
	}
}

// White-box: libcrypto must dominate the server for a signing-heavy suite.
func TestWhiteBoxProfile(t *testing.T) {
	t.Parallel()
	r, err := RunCampaign(CampaignOptions{
		KEM: "kyber512", Sig: "dilithium2", Link: ScenarioTestbed,
		Buffer: tls13.BufferImmediate, Samples: 3, Seed: 1, Profile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dist := r.ServerProfile.Distribution()
	if len(dist) == 0 {
		t.Fatal("no server profile collected")
	}
	if dist[0].Lib != perf.LibCrypto {
		t.Errorf("server-dominant bucket = %s (%.0f%%), want libcrypto",
			dist[0].Lib, dist[0].Share*100)
	}
	if r.ServerCPU <= 0 || r.ClientCPU <= 0 {
		t.Error("CPU costs not collected")
	}
}

// The high-delay scenario must cost at least one full RTT; large flights
// must cost several (the Section 5.4 CWND effect).
func TestHighDelayScenario(t *testing.T) {
	t.Parallel()
	small, err := RunHandshake(RunOptions{
		KEM: "x25519", Sig: "rsa:2048", Link: netsim.ScenarioHighDelay,
		Buffer: tls13.BufferImmediate, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if small.Phases.Total() < time.Second || small.Phases.Total() > 1200*time.Millisecond {
		t.Errorf("1s-RTT handshake = %v, want ~1s", small.Phases.Total())
	}
	big, err := RunHandshake(RunOptions{
		KEM: "x25519", Sig: "sphincs256", Link: netsim.ScenarioHighDelay,
		Buffer: tls13.BufferImmediate, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// sphincs256's ~105kB flight needs 4 CWND rounds: total ≥ 3s.
	if big.Phases.Total() < 2500*time.Millisecond {
		t.Errorf("sphincs256 1s-RTT handshake = %v, want multiple RTTs", big.Phases.Total())
	}
}

func TestRanking(t *testing.T) {
	t.Parallel()
	results := []*CampaignResult{
		{KEM: "fast", TotalMedian: time.Millisecond},
		{KEM: "mid", TotalMedian: 5 * time.Millisecond},
		{KEM: "slow", TotalMedian: 100 * time.Millisecond},
	}
	ranks := RankFromResults(results, func(r *CampaignResult) string { return r.KEM })
	if ranks[0].Name != "fast" || ranks[0].Score != 0 {
		t.Errorf("fastest rank = %+v, want fast/0", ranks[0])
	}
	if ranks[2].Name != "slow" || ranks[2].Score != 10 {
		t.Errorf("slowest rank = %+v, want slow/10", ranks[2])
	}
}

func TestAttackSurface(t *testing.T) {
	t.Parallel()
	res := []*CampaignResult{{
		KEM: "x25519", Sig: "sphincs128",
		ClientBytes: 1000, ServerBytes: 36000,
		ClientCPU: time.Millisecond, ServerCPU: 6 * time.Millisecond,
	}}
	a := AttackSurfaceFromResults(res)
	if a[0].Amplification != 36 {
		t.Errorf("amplification = %v, want 36", a[0].Amplification)
	}
	if a[0].CPUAsymmetry != 6 {
		t.Errorf("asymmetry = %v, want 6", a[0].CPUAsymmetry)
	}
}
