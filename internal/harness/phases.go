package harness

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"pqtls/internal/netsim"
	"pqtls/internal/obs"
	"pqtls/internal/stats"
	"pqtls/internal/tls13"
)

// PhasesOptions configure one phase-breakdown run: a small campaign of
// traced handshakes for a single (KEM, Sig, buffer policy) grid cell.
type PhasesOptions struct {
	KEM    string
	Sig    string
	Link   netsim.LinkConfig
	Buffer tls13.BufferPolicy
	// Samples is the number of traced handshakes (default 9).
	Samples int
	Seed    int64
	Resume  bool
	Timing  Timing
}

// PhasesReport is the aggregated phase breakdown of one cell.
type PhasesReport struct {
	Opts PhasesOptions
	// Stats are the per-(endpoint, phase) aggregates, client first.
	Stats []obs.PhaseStat
	// TotalP50 is the median tap Total (CH on the wire → client Finished on
	// the wire) — the quantity every campaign table reports, which the
	// client's in-Total phases must sum to.
	TotalP50 time.Duration
	// ClientSumP50 is the median over samples of the client's summed
	// in-Total phase durations (busy phases + flight-waits).
	ClientSumP50 time.Duration
	// Collector holds the raw traces for JSONL export.
	Collector *obs.Collector
}

// preCHPhases are client phases that run before the ClientHello reaches the
// wire (or after the Finished leaves it) and are therefore outside the
// tap's Total; they are reported separately rather than summed against it.
var preCHPhases = map[string]bool{
	tls13.PhaseClientHello:   true,
	tls13.PhaseTicketProcess: true,
}

// RunPhases runs Samples traced handshakes of one cell and aggregates the
// span trees. Samples run sequentially: phase tracing is about where time
// goes within a handshake, not throughput, and the per-sample DRBG makes
// the result independent of scheduling anyway.
func RunPhases(opts PhasesOptions) (*PhasesReport, error) {
	if opts.Samples <= 0 {
		opts.Samples = 9
	}
	col := &obs.Collector{}
	var totals, cliSums []time.Duration
	for i := 0; i < opts.Samples; i++ {
		seed := opts.Seed + int64(i)*7919
		res, err := RunHandshake(RunOptions{
			KEM: opts.KEM, Sig: opts.Sig, Link: opts.Link, Buffer: opts.Buffer,
			Seed:        seed,
			Rand:        newSampleDRBG(opts.KEM, opts.Sig, opts.Link.Name, seed),
			Resume:      opts.Resume,
			Timing:      opts.Timing,
			Trace:       col,
			TraceSample: i,
		})
		if err != nil {
			return nil, err
		}
		totals = append(totals, res.Phases.Total())
	}
	for _, t := range col.Traces() {
		if t.Meta().Endpoint != "client" {
			continue
		}
		sums, _ := PhaseSumsInTotal(t)
		var s time.Duration
		for _, d := range sums {
			s += d
		}
		cliSums = append(cliSums, s)
	}
	return &PhasesReport{
		Opts:         opts,
		Stats:        obs.AggregatePhases(col.Traces()),
		TotalP50:     stats.Median(totals),
		ClientSumP50: stats.Median(cliSums),
		Collector:    col,
	}, nil
}

// PhaseSumsInTotal returns one trace's depth-0 phase sums restricted to the
// phases inside the tap's Total window, plus first-seen order.
func PhaseSumsInTotal(t *obs.Tracer) (map[string]time.Duration, []string) {
	sums, order := obs.PhaseSums(t)
	kept := order[:0]
	for _, name := range order {
		if preCHPhases[name] {
			delete(sums, name)
			continue
		}
		kept = append(kept, name)
	}
	return sums, kept
}

// SumError returns the relative disagreement between the client's summed
// in-Total phases and the tap Total — the consistency check `pqbench
// phases` enforces (the modeled pipeline should agree to well under 1%).
func (r *PhasesReport) SumError() float64 {
	if r.TotalP50 == 0 {
		return 0
	}
	d := r.ClientSumP50 - r.TotalP50
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(r.TotalP50)
}

// FlightWaitP50 returns the client's median summed flight-wait, or 0 when
// the phase never occurred.
func (r *PhasesReport) FlightWaitP50() time.Duration {
	for _, st := range r.Stats {
		if st.Endpoint == "client" && st.Phase == tls13.PhaseFlightWait {
			return st.P50
		}
	}
	return 0
}

// RenderPhases writes the stacked phase-breakdown table: the client section
// first (each in-Total phase with its share of the tap Total, then the sum
// and the Total itself), the server section, and finally the client phases
// outside the Total window.
func RenderPhases(w io.Writer, r *PhasesReport) error {
	fmt.Fprintf(w, "# phases %s/%s link=%s buffer=%s samples=%d resume=%v\n",
		r.Opts.KEM, r.Opts.Sig, r.Opts.Link.Name, BufferName(r.Opts.Buffer),
		r.Opts.Samples, r.Opts.Resume)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ENDPOINT\tPHASE\tN\tP50(ms)\tP95(ms)\tMEAN(ms)\tSHARE")
	var clientSum time.Duration
	for _, st := range r.Stats {
		if st.Endpoint != "client" || preCHPhases[st.Phase] {
			continue
		}
		clientSum += st.P50
		fmt.Fprintf(tw, "client\t%s\t%d\t%s\t%s\t%s\t%s\n",
			st.Phase, st.Samples, ms(st.P50), ms(st.P95), ms(st.Mean), share(st.P50, r.TotalP50))
	}
	// The sum row uses the per-sample sums' median (phase medians are not
	// additive across samples); Δ is its disagreement with the tap.
	fmt.Fprintf(tw, "client\tsum(in-total)\t\t%s\t\t\t%s\n", ms(r.ClientSumP50), share(r.ClientSumP50, r.TotalP50))
	fmt.Fprintf(tw, "client\ttotal(tap)\t\t%s\t\t\tΔ %.2f%%\n", ms(r.TotalP50), r.SumError()*100)
	for _, st := range r.Stats {
		if st.Endpoint != "server" {
			continue
		}
		fmt.Fprintf(tw, "server\t%s\t%d\t%s\t%s\t%s\t\n",
			st.Phase, st.Samples, ms(st.P50), ms(st.P95), ms(st.Mean))
	}
	for _, st := range r.Stats {
		if st.Endpoint != "client" || !preCHPhases[st.Phase] {
			continue
		}
		fmt.Fprintf(tw, "client\t%s*\t%d\t%s\t%s\t%s\t\n",
			st.Phase, st.Samples, ms(st.P50), ms(st.P95), ms(st.Mean))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "# * outside the tap Total window (before the ClientHello hits the wire / after Finished)")
	return err
}

// WritePhasesCSV emits the machine-readable form of the breakdown.
func WritePhasesCSV(w io.Writer, r *PhasesReport) error {
	if _, err := fmt.Fprintln(w, "ka,sa,buffer,endpoint,phase,samples,p50_us,p95_us,mean_us,share"); err != nil {
		return err
	}
	for _, st := range r.Stats {
		sh := ""
		if st.Endpoint == "client" && !preCHPhases[st.Phase] && r.TotalP50 > 0 {
			sh = fmt.Sprintf("%.4f", float64(st.P50)/float64(r.TotalP50))
		}
		if _, err := fmt.Fprintf(w, "%s,%s,%s,%s,%s,%d,%d,%d,%d,%s\n",
			r.Opts.KEM, r.Opts.Sig, BufferName(r.Opts.Buffer),
			st.Endpoint, st.Phase, st.Samples,
			st.P50.Microseconds(), st.P95.Microseconds(), st.Mean.Microseconds(), sh); err != nil {
			return err
		}
	}
	return nil
}

// ms renders a duration as fractional milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1e3)
}

// share renders d as a percentage of total ("" when total is zero).
func share(d, total time.Duration) string {
	if total == 0 {
		return ""
	}
	return fmt.Sprintf("%.1f%%", 100*float64(d)/float64(total))
}
