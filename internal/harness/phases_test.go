package harness

import (
	"bytes"
	"strings"
	"testing"

	"pqtls/internal/obs"
	"pqtls/internal/tls13"
)

func runPhasesCell(t *testing.T, kem, sig string, buffer tls13.BufferPolicy) *PhasesReport {
	t.Helper()
	r, err := RunPhases(PhasesOptions{
		KEM: kem, Sig: sig, Link: ScenarioTestbed, Buffer: buffer,
		Samples: 3, Seed: 1,
	})
	if err != nil {
		t.Fatalf("RunPhases(%s/%s): %v", kem, sig, err)
	}
	return r
}

// TestPhasesSumMatchesTap is the report's core honesty check: under modeled
// timing the client's in-Total phases (busy + flight-wait) must reconstruct
// the passive tap's Total to well under the 1% acceptance bound.
func TestPhasesSumMatchesTap(t *testing.T) {
	for _, tc := range []struct{ kem, sig string }{
		{"x25519", "ed25519"},
		{"kyber768", "dilithium3"},
	} {
		r := runPhasesCell(t, tc.kem, tc.sig, tls13.BufferDefault)
		if r.TotalP50 <= 0 {
			t.Fatalf("%s/%s: no tap total", tc.kem, tc.sig)
		}
		if e := r.SumError(); e > 0.01 {
			t.Errorf("%s/%s: phase sum %v vs tap total %v: error %.2f%% > 1%%",
				tc.kem, tc.sig, r.ClientSumP50, r.TotalP50, e*100)
		}
		if n := r.Collector.Len(); n != 2*r.Opts.Samples {
			t.Errorf("%s/%s: collected %d traces, want %d", tc.kem, tc.sig, n, 2*r.Opts.Samples)
		}
	}
}

// TestPhasesBufferingFlightWait: the buffering interaction the subsystem
// exists to expose — pushing the ServerHello early (BufferImmediate) lets
// the client overlap decapsulation with the server still signing, changing
// where and how long the client waits between flights.
func TestPhasesBufferingFlightWait(t *testing.T) {
	def := runPhasesCell(t, "kyber768", "dilithium3", tls13.BufferDefault)
	imm := runPhasesCell(t, "kyber768", "dilithium3", tls13.BufferImmediate)
	if def.FlightWaitP50() == 0 && imm.FlightWaitP50() == 0 {
		t.Fatal("no flight-wait recorded under either policy")
	}
	if def.FlightWaitP50() == imm.FlightWaitP50() {
		t.Errorf("flight-wait identical under both policies (%v) — buffering effect invisible",
			def.FlightWaitP50())
	}
}

func TestPhasesRenderAndCSV(t *testing.T) {
	r := runPhasesCell(t, "x25519", "ed25519", tls13.BufferDefault)
	var tbl bytes.Buffer
	if err := RenderPhases(&tbl, r); err != nil {
		t.Fatalf("RenderPhases: %v", err)
	}
	out := tbl.String()
	for _, want := range []string{"total(tap)", "sum(in-total)", tls13.PhaseFlightWait, tls13.PhaseServerHello, "client-hello*"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	if err := WritePhasesCSV(&csv, r); err != nil {
		t.Fatalf("WritePhasesCSV: %v", err)
	}
	if !strings.HasPrefix(csv.String(), "ka,sa,buffer,endpoint,phase,samples,p50_us,p95_us,mean_us,share\n") {
		t.Errorf("csv header wrong:\n%s", csv.String())
	}
	if !strings.Contains(csv.String(), "x25519,ed25519,default,client,") {
		t.Errorf("csv missing client rows:\n%s", csv.String())
	}
	var jsonl bytes.Buffer
	if err := r.Collector.WriteJSONL(&jsonl); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if n, err := obs.ValidateJSONL(bytes.NewReader(jsonl.Bytes())); err != nil || n == 0 {
		t.Errorf("JSONL self-validation: n=%d err=%v", n, err)
	}
}

// TestPhasesDeterministic: same options, byte-identical trace export.
func TestPhasesDeterministic(t *testing.T) {
	a := runPhasesCell(t, "kyber768", "ecdsa-p256", tls13.BufferDefault)
	b := runPhasesCell(t, "kyber768", "ecdsa-p256", tls13.BufferDefault)
	var ja, jb bytes.Buffer
	if err := a.Collector.WriteJSONL(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.Collector.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Error("modeled phase traces differ between identical runs")
	}
}
