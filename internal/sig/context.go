package sig

import (
	"sync"
	"sync/atomic"
)

// Signer is a reusable signing context bound to one private key. For
// schemes with expensive per-signature key expansion (Dilithium re-derives
// the NTT-domain matrix and secret vectors on every Sign) the context
// hoists that work out of the hot path; for everything else it is a thin
// closure over Scheme.Sign. Implementations are safe for concurrent use.
type Signer interface {
	Sign(msg []byte) ([]byte, error)
}

// Verifier is a reusable verification context bound to one public key.
type Verifier interface {
	Verify(msg, sig []byte) bool
}

// BatchVerifier is a Verifier that amortizes symmetric work across many
// (msg, sig) pairs in one call (Dilithium's cached VerifyKey batches its
// mu/challenge/w1 hashes through a multi-sponge pass). Decisions are
// identical to calling Verify on each pair; the returned slice has one
// entry per input pair. Detect support with a type assertion on the
// Verifier returned by NewVerifier or VerifierCache.For.
type BatchVerifier interface {
	Verifier
	VerifyBatch(msgs, sigs [][]byte) []bool
}

// contextScheme is implemented by schemes that provide precomputed
// signing/verification contexts (wired through the pqScheme adapter).
type contextScheme interface {
	newSigner(priv []byte) (Signer, error)
	newVerifier(pub []byte) (Verifier, error)
}

// NewSigner returns a signing context for priv, precomputed when the
// scheme supports it. Signatures are identical to Scheme.Sign(priv, msg).
func NewSigner(s Scheme, priv []byte) Signer {
	if cs, ok := s.(contextScheme); ok {
		if sg, err := cs.newSigner(priv); err == nil && sg != nil {
			return sg
		}
	}
	return schemeSigner{s: s, priv: priv}
}

// NewVerifier returns a verification context for pub, precomputed when the
// scheme supports it. Results are identical to Scheme.Verify(pub, msg, sig).
func NewVerifier(s Scheme, pub []byte) Verifier {
	if cs, ok := s.(contextScheme); ok {
		if v, err := cs.newVerifier(pub); err == nil && v != nil {
			return v
		}
	}
	return schemeVerifier{s: s, pub: pub}
}

type schemeSigner struct {
	s    Scheme
	priv []byte
}

func (g schemeSigner) Sign(msg []byte) ([]byte, error) { return g.s.Sign(g.priv, msg) }

type schemeVerifier struct {
	s   Scheme
	pub []byte
}

func (g schemeVerifier) Verify(msg, sig []byte) bool { return g.s.Verify(g.pub, msg, sig) }

// VerifierCache memoizes verification contexts by (scheme, public key). A
// TLS client talking to a fleet of servers sees a handful of certificate
// keys over thousands of handshakes; caching the precomputed contexts
// amortizes Dilithium's matrix expansion across all of them. Safe for
// concurrent use.
type VerifierCache struct {
	mu  sync.Mutex
	m   map[string]Verifier
	cap int

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// NewVerifierCache returns a cache bounded to capacity entries (<= 0 means
// a default of 64). Eviction is random-victim: the key population is tiny
// in practice and a full cache signals misuse, not a working set.
func NewVerifierCache(capacity int) *VerifierCache {
	if capacity <= 0 {
		capacity = 64
	}
	return &VerifierCache{m: make(map[string]Verifier), cap: capacity}
}

// For returns the cached verification context for pub under s, building
// and caching one on first sight.
func (c *VerifierCache) For(s Scheme, pub []byte) Verifier {
	key := s.Name() + "\x00" + string(pub)
	c.mu.Lock()
	if v, ok := c.m[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return v
	}
	c.mu.Unlock()
	c.misses.Add(1)
	// Build outside the lock: Dilithium context construction is ~100µs and
	// must not serialize unrelated lookups.
	v := NewVerifier(s, pub)
	c.mu.Lock()
	if _, resident := c.m[key]; !resident && len(c.m) >= c.cap {
		for k := range c.m {
			delete(c.m, k)
			break
		}
		c.evictions.Add(1)
	}
	c.m[key] = v
	c.mu.Unlock()
	return v
}

// VerifierCacheStats is a point-in-time view of the cache's counters.
type VerifierCacheStats struct {
	Hits      uint64 // lookups answered from the cache
	Misses    uint64 // lookups that built a fresh context
	Evictions uint64 // resident entries displaced by the size cap
	Entries   int    // current resident count (≤ the cap)
}

// Stats returns the cache's counters and current size.
func (c *VerifierCache) Stats() VerifierCacheStats {
	c.mu.Lock()
	n := len(c.m)
	c.mu.Unlock()
	return VerifierCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   n,
	}
}
