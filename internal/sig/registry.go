package sig

import (
	"crypto/elliptic"
	"io"

	"pqtls/internal/crypto/falcon"
	"pqtls/internal/crypto/mldsa"
	"pqtls/internal/crypto/sphincs"
)

// pqScheme adapts the parameter-set style crypto packages.
type pqScheme struct {
	name    string
	level   int
	pkSize  int
	sigSize int
	keygen  func(io.Reader) (pub, priv []byte, err error)
	sign    func(priv, msg []byte) ([]byte, error)
	verify  func(pub, msg, sig []byte) bool
	// signerFn/verifierFn, when set, build the scheme's precomputed
	// signing/verification contexts (see NewSigner / NewVerifier).
	signerFn   func(priv []byte) (Signer, error)
	verifierFn func(pub []byte) (Verifier, error)
}

func (s *pqScheme) Name() string       { return s.name }
func (s *pqScheme) Level() int         { return s.level }
func (s *pqScheme) Hybrid() bool       { return false }
func (s *pqScheme) PublicKeySize() int { return s.pkSize }
func (s *pqScheme) SignatureSize() int { return s.sigSize }

func (s *pqScheme) GenerateKey(rng io.Reader) (pub, priv []byte, err error) {
	return s.keygen(rng)
}
func (s *pqScheme) Sign(priv, msg []byte) ([]byte, error) { return s.sign(priv, msg) }
func (s *pqScheme) Verify(pub, msg, sig []byte) bool      { return s.verify(pub, msg, sig) }

func (s *pqScheme) newSigner(priv []byte) (Signer, error) {
	if s.signerFn == nil {
		return nil, nil
	}
	return s.signerFn(priv)
}

func (s *pqScheme) newVerifier(pub []byte) (Verifier, error) {
	if s.verifierFn == nil {
		return nil, nil
	}
	return s.verifierFn(pub)
}

func dilithiumScheme(p *mldsa.Params, level int) Scheme {
	return &pqScheme{name: p.Name, level: level,
		pkSize: p.PublicKeySize(), sigSize: p.SignatureSize(),
		keygen: p.GenerateKey, sign: p.Sign, verify: p.Verify,
		signerFn: func(priv []byte) (Signer, error) {
			return p.NewSigningKey(priv)
		},
		verifierFn: func(pub []byte) (Verifier, error) {
			return p.NewVerifyKey(pub)
		}}
}

func falconScheme(p *falcon.Params, level int) Scheme {
	return &pqScheme{name: p.Name, level: level,
		pkSize: p.PublicKeySize(), sigSize: p.SignatureSize(),
		keygen: p.GenerateKey, sign: p.Sign, verify: p.Verify}
}

func sphincsScheme(p *sphincs.Params, level int) Scheme {
	return &pqScheme{name: p.Name, level: level,
		pkSize: p.PublicKeySize(), sigSize: p.SignatureSize(),
		keygen: p.GenerateKey, sign: p.Sign, verify: p.Verify}
}

// init registers the signature algorithms of Tables 2b and 4b. Levels
// follow the paper's grouping; rsa:1024/rsa:2048 are "sub-level one" (0).
func init() {
	rsa1024 := &rsaScheme{name: "rsa:1024", bits: 1024, level: 0}
	rsa2048 := &rsaScheme{name: "rsa:2048", bits: 2048, level: 0}
	rsa3072 := &rsaScheme{name: "rsa:3072", bits: 3072, level: 1}
	rsa4096 := &rsaScheme{name: "rsa:4096", bits: 4096, level: 1}

	p256 := &ecdsaScheme{name: "ecdsa-p256", curve: elliptic.P256(), level: 1}
	p384 := &ecdsaScheme{name: "ecdsa-p384", curve: elliptic.P384(), level: 3}
	p521 := &ecdsaScheme{name: "ecdsa-p521", curve: elliptic.P521(), level: 5}

	falcon512 := falconScheme(falcon.Falcon512, 1)
	falcon1024 := falconScheme(falcon.Falcon1024, 5)
	sphincs128 := sphincsScheme(sphincs.SPHINCS128f, 1)
	sphincs192 := sphincsScheme(sphincs.SPHINCS192f, 3)
	sphincs256 := sphincsScheme(sphincs.SPHINCS256f, 5)
	sphincs128s := sphincsScheme(sphincs.SPHINCS128s, 1)
	sphincs192s := sphincsScheme(sphincs.SPHINCS192s, 3)
	sphincs256s := sphincsScheme(sphincs.SPHINCS256s, 5)
	dilithium2 := dilithiumScheme(mldsa.Dilithium2, 2)
	dilithium2aes := dilithiumScheme(mldsa.Dilithium2AES, 2)
	dilithium3 := dilithiumScheme(mldsa.Dilithium3, 3)
	dilithium3aes := dilithiumScheme(mldsa.Dilithium3AES, 3)
	dilithium5 := dilithiumScheme(mldsa.Dilithium5, 5)
	dilithium5aes := dilithiumScheme(mldsa.Dilithium5AES, 5)

	for _, s := range []Scheme{
		rsa1024, rsa2048, rsa3072, rsa4096,
		p256, p384, p521, ed25519Scheme{},
		falcon512, falcon1024,
		sphincs128, sphincs192, sphincs256,
		sphincs128s, sphincs192s, sphincs256s,
		dilithium2, dilithium2aes, dilithium3, dilithium3aes, dilithium5, dilithium5aes,
	} {
		register(s)
	}

	// Composite hybrids, named and paired exactly as in Tables 2b and 4b.
	register(newComposite("p256_falcon512", p256, falcon512, 1))
	register(newComposite("p256_sphincs128", p256, sphincs128, 1))
	register(newComposite("p256_dilithium2", p256, dilithium2, 2))
	register(newComposite("rsa3072_dilithium2", rsa3072, dilithium2, 2))
	register(newComposite("p384_dilithium3", p384, dilithium3, 3))
	register(newComposite("p384_sphincs192", p384, sphincs192, 3))
	register(newComposite("p521_dilithium5", p521, dilithium5, 5))
	register(newComposite("p521_falcon1024", p521, falcon1024, 5))
	register(newComposite("p521_sphincs256", p521, sphincs256, 5))
}
