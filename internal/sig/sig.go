// Package sig defines the signature-algorithm abstraction used by the TLS
// 1.3 stack and PKI, and registers the named signature algorithms of the
// paper's Tables 2b and 4b: RSA at four modulus sizes, Dilithium (and AES
// variants), Falcon, SPHINCS+, and the classical+PQ composite hybrids.
package sig

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Scheme is a signature algorithm usable for TLS certificates and the
// CertificateVerify handshake signature.
type Scheme interface {
	// Name is the paper's algorithm label (e.g. "p256_dilithium2").
	Name() string
	// Level is the claimed NIST security level. Following the paper,
	// rsa:1024 and rsa:2048 report level 0 ("sub-level one").
	Level() int
	// Hybrid reports whether this is a classical+PQ composite.
	Hybrid() bool
	// GenerateKey creates a signing key pair (rng nil = crypto/rand, which
	// for RSA uses a per-size cached key, mirroring the paper's fixed
	// server certificates).
	GenerateKey(rng io.Reader) (pub, priv []byte, err error)
	// Sign signs msg with priv.
	Sign(priv, msg []byte) ([]byte, error)
	// Verify reports whether sig is valid for msg under pub.
	Verify(pub, msg, sig []byte) bool
	// PublicKeySize is the nominal public-key wire size.
	PublicKeySize() int
	// SignatureSize is the nominal signature wire size.
	SignatureSize() int
}

// registry is populated from init functions and read from every handshake;
// the RWMutex keeps lookups race-free once parallel campaign workers (and
// any future runtime registration) are in play.
var registry = struct {
	sync.RWMutex
	m map[string]Scheme
}{m: map[string]Scheme{}}

func register(s Scheme) {
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[s.Name()]; dup {
		panic("sig: duplicate registration of " + s.Name())
	}
	registry.m[s.Name()] = s
}

// ByName returns the named scheme.
func ByName(name string) (Scheme, error) {
	registry.RLock()
	s, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sig: unknown signature algorithm %q", name)
	}
	return s, nil
}

// MustByName is ByName for static suite names in tests and benchmarks.
func MustByName(name string) Scheme {
	s, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names returns all registered names, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.m))
	for n := range registry.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByLevel returns scheme names at the given NIST level, sorted.
func ByLevel(level int) []string {
	registry.RLock()
	defer registry.RUnlock()
	var out []string
	for n, s := range registry.m {
		if s.Level() == level {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
