package sig

import (
	"bytes"
	"strings"
	"testing"
)

// The SA labels of Table 2b plus rsa3072_dilithium2 from Table 4b.
var paperNames = []string{
	"rsa:1024", "rsa:2048",
	"falcon512", "rsa:3072", "rsa:4096", "sphincs128", "p256_falcon512", "p256_sphincs128",
	"dilithium2", "dilithium2_aes", "p256_dilithium2", "rsa3072_dilithium2",
	"dilithium3", "dilithium3_aes", "sphincs192", "p384_dilithium3", "p384_sphincs192",
	"dilithium5", "dilithium5_aes", "falcon1024", "sphincs256",
	"p521_dilithium5", "p521_falcon1024", "p521_sphincs256",
}

func TestRegistryComplete(t *testing.T) {
	t.Parallel()
	for _, name := range paperNames {
		if _, err := ByName(name); err != nil {
			t.Errorf("missing scheme %s", name)
		}
	}
	if _, err := ByName("md5"); err == nil {
		t.Error("unknown name did not error")
	}
}

func TestSignVerifyAll(t *testing.T) {
	t.Parallel()
	msg := []byte("TLS 1.3, server CertificateVerify")
	for _, name := range paperNames {
		name := name
		t.Run(strings.ReplaceAll(name, ":", ""), func(t *testing.T) {
			t.Parallel()
			if testing.Short() && strings.Contains(name, "sphincs") && name != "sphincs128" {
				t.Skip("slow in short mode")
			}
			s := MustByName(name)
			pub, priv, err := s.GenerateKey(nil)
			if err != nil {
				t.Fatal(err)
			}
			sigBytes, err := s.Sign(priv, msg)
			if err != nil {
				t.Fatal(err)
			}
			if !s.Verify(pub, msg, sigBytes) {
				t.Fatal("valid signature rejected")
			}
			if s.Verify(pub, []byte("other"), sigBytes) {
				t.Error("signature verified for wrong message")
			}
			bad := bytes.Clone(sigBytes)
			bad[len(bad)/2] ^= 1
			if s.Verify(pub, msg, bad) {
				t.Error("tampered signature accepted")
			}
		})
	}
}

// PQ signature sizes are fixed and drive the paper's data volumes.
func TestSignatureSizes(t *testing.T) {
	t.Parallel()
	want := map[string]int{
		"falcon512":  666,
		"falcon1024": 1280,
		"dilithium2": 2420,
		"dilithium3": 3293,
		"dilithium5": 4595,
		"sphincs128": 17088,
		"sphincs192": 35664,
		"sphincs256": 49856,
		"rsa:2048":   256,
		"rsa:4096":   512,
	}
	for name, size := range want {
		if got := MustByName(name).SignatureSize(); got != size {
			t.Errorf("%s: signature size %d, want %d", name, got, size)
		}
	}
}

func TestLevels(t *testing.T) {
	t.Parallel()
	checks := map[string]int{
		"rsa:1024":        0,
		"rsa:2048":        0, // the paper calls rsa:2048 "sub-level one"
		"rsa:3072":        1,
		"falcon512":       1,
		"dilithium2":      2,
		"dilithium3":      3,
		"sphincs256":      5,
		"p521_falcon1024": 5,
	}
	for name, level := range checks {
		if got := MustByName(name).Level(); got != level {
			t.Errorf("%s: level %d, want %d", name, got, level)
		}
	}
}

func TestHybridFlag(t *testing.T) {
	t.Parallel()
	for _, name := range paperNames {
		s := MustByName(name)
		wantHybrid := strings.Contains(name, "_") && !strings.HasSuffix(name, "_aes")
		if s.Hybrid() != wantHybrid {
			t.Errorf("%s: Hybrid() = %v, want %v", name, s.Hybrid(), wantHybrid)
		}
	}
}

// Composite verification must fail when either half fails.
func TestCompositeRequiresBoth(t *testing.T) {
	t.Parallel()
	s := MustByName("p256_dilithium2")
	pub, priv, err := s.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("composite")
	sigBytes, err := s.Sign(priv, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Verify(pub, msg, sigBytes) {
		t.Fatal("valid composite rejected")
	}
	// Corrupt the classical half (right after the length prefix).
	badClassic := bytes.Clone(sigBytes)
	badClassic[6] ^= 1
	if s.Verify(pub, msg, badClassic) {
		t.Error("composite accepted with broken classical half")
	}
	// Corrupt the PQ half (last byte).
	badPQ := bytes.Clone(sigBytes)
	badPQ[len(badPQ)-1] ^= 1
	if s.Verify(pub, msg, badPQ) {
		t.Error("composite accepted with broken PQ half")
	}
}

// RSA keygen with rng=nil must reuse the cached key (fixed server certs);
// with an explicit rng it must generate a fresh one.
func TestRSAKeyCaching(t *testing.T) {
	t.Parallel()
	s := MustByName("rsa:2048")
	pub1, _, err := s.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	pub2, _, err := s.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pub1, pub2) {
		t.Error("cached RSA key changed between calls")
	}
}

func TestMalformedComposite(t *testing.T) {
	t.Parallel()
	s := MustByName("p256_dilithium2")
	pub, _, _ := s.GenerateKey(nil)
	if s.Verify(pub, []byte("m"), []byte{0, 0}) {
		t.Error("truncated composite signature accepted")
	}
	if s.Verify([]byte{0}, []byte("m"), make([]byte, s.SignatureSize())) {
		t.Error("truncated composite public key accepted")
	}
}

// Classical signing must be derandomized (RFC 6979 style) and seeded keygen
// reproducible: ECDSA's variable-length DER signatures would otherwise
// jitter flight sizes between runs and break the byte-identical table gates.
func TestClassicalDeterminism(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"ecdsa-p256", "ecdsa-p384", "ecdsa-p521", "rsa:1024", "p256_dilithium2"} {
		s := MustByName(name)
		pub1, priv1, err := s.GenerateKey(newDetReader("seed"))
		if err != nil {
			t.Fatalf("%s: keygen: %v", name, err)
		}
		pub2, priv2, err := s.GenerateKey(newDetReader("seed"))
		if err != nil {
			t.Fatalf("%s: keygen: %v", name, err)
		}
		if name != "rsa:1024" { // stdlib RSA keygen is inherently non-reproducible
			if !bytes.Equal(pub1, pub2) || !bytes.Equal(priv1, priv2) {
				t.Errorf("%s: seeded keygen not reproducible", name)
			}
		}
		msg := []byte("determinism probe")
		sig1, err := s.Sign(priv1, msg)
		if err != nil {
			t.Fatalf("%s: sign: %v", name, err)
		}
		sig2, err := s.Sign(priv1, msg)
		if err != nil {
			t.Fatalf("%s: sign: %v", name, err)
		}
		if !bytes.Equal(sig1, sig2) {
			t.Errorf("%s: signing not deterministic", name)
		}
		if !s.Verify(pub1, msg, sig1) {
			t.Errorf("%s: deterministic signature does not verify", name)
		}
	}
}
