package sig

import (
	"crypto/sha256"
	"encoding/binary"
)

// detReader is a SHA-256 counter-mode stream keyed by a domain-separation
// label and the inputs it is derived from. The classical schemes use it to
// derandomize signing: Go's crypto/ecdsa and crypto/rsa deliberately refuse
// to be reproducible from a seeded io.Reader (randutil.MaybeReadByte
// consumes a byte of the stream at random), so handing them a seeded reader
// is not enough to make two runs of the simulator produce the same wire
// bytes. Deriving the randomness from the private key and message digest —
// the RFC 6979 construction — removes the process's entropy source from the
// signature entirely, which is what keeps regenerated result tables
// byte-identical across runs and worker counts.
type detReader struct {
	seed [32]byte
	ctr  uint64
	buf  []byte
}

// newDetReader keys a stream from the label and a length-prefixed
// concatenation of the parts (length prefixes keep distinct part
// boundaries from colliding).
func newDetReader(label string, parts ...[]byte) *detReader {
	h := sha256.New()
	h.Write([]byte(label))
	for _, p := range parts {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write(p)
	}
	d := &detReader{}
	h.Sum(d.seed[:0])
	return d
}

func (d *detReader) Read(p []byte) (int, error) {
	for len(d.buf) < len(p) {
		var block [40]byte
		copy(block[:32], d.seed[:])
		binary.BigEndian.PutUint64(block[32:], d.ctr)
		d.ctr++
		sum := sha256.Sum256(block[:])
		d.buf = append(d.buf, sum[:]...)
	}
	n := copy(p, d.buf)
	d.buf = d.buf[n:]
	return n, nil
}
