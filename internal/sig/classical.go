package sig

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/ed25519"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/asn1"
	"fmt"
	"io"
	"math/big"
	"sync"
)

// rsaScheme is RSA-PSS with SHA-256, the RSA mode of TLS 1.3.
type rsaScheme struct {
	name  string
	bits  int
	level int
}

// rsaKeyCache holds one long-lived key per modulus size. The paper's server
// certificates are fixed per run; regenerating a 4096-bit modulus per
// handshake would measure keygen, not TLS. Each size is a singleflight
// entry: concurrent first callers for one modulus size block on that
// entry's Once while other sizes proceed independently.
type rsaKeyEntry struct {
	once sync.Once
	key  *rsa.PrivateKey
	err  error
}

var rsaKeyCache = struct {
	mu sync.Mutex
	m  map[int]*rsaKeyEntry
}{m: map[int]*rsaKeyEntry{}}

func cachedRSAKey(bits int) (*rsa.PrivateKey, error) {
	rsaKeyCache.mu.Lock()
	e, ok := rsaKeyCache.m[bits]
	if !ok {
		e = &rsaKeyEntry{}
		rsaKeyCache.m[bits] = e
	}
	rsaKeyCache.mu.Unlock()
	e.once.Do(func() { e.key, e.err = rsa.GenerateKey(rand.Reader, bits) })
	return e.key, e.err
}

func (r *rsaScheme) Name() string { return r.name }
func (r *rsaScheme) Level() int   { return r.level }
func (r *rsaScheme) Hybrid() bool { return false }

// PublicKeySize is the DER-encoded PKIX size (modulus + exponent + ASN.1).
func (r *rsaScheme) PublicKeySize() int { return r.bits/8 + 38 }

// SignatureSize equals the modulus size for RSA.
func (r *rsaScheme) SignatureSize() int { return r.bits / 8 }

func (r *rsaScheme) GenerateKey(rng io.Reader) (pub, priv []byte, err error) {
	var key *rsa.PrivateKey
	if rng == nil {
		key, err = cachedRSAKey(r.bits)
	} else {
		key, err = rsa.GenerateKey(rng, r.bits)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("sig %s: keygen: %w", r.name, err)
	}
	pub, err = x509.MarshalPKIXPublicKey(&key.PublicKey)
	if err != nil {
		return nil, nil, fmt.Errorf("sig %s: marshal public key: %w", r.name, err)
	}
	return pub, x509.MarshalPKCS1PrivateKey(key), nil
}

func (r *rsaScheme) Sign(priv, msg []byte) ([]byte, error) {
	key, err := x509.ParsePKCS1PrivateKey(priv)
	if err != nil {
		return nil, fmt.Errorf("sig %s: bad private key: %w", r.name, err)
	}
	digest := sha256.Sum256(msg)
	// The salt source is derived from the key and digest rather than the
	// process's entropy pool. PSS output length is fixed by the modulus, so
	// unlike ECDSA this never affects flight sizes; deriving the salt just
	// removes one more run-to-run difference from captured wire bytes.
	salt := newDetReader("pqtls-pss-salt", priv, digest[:])
	return rsa.SignPSS(salt, key, crypto.SHA256, digest[:], &rsa.PSSOptions{
		SaltLength: rsa.PSSSaltLengthEqualsHash,
	})
}

func (r *rsaScheme) Verify(pub, msg, sig []byte) bool {
	parsed, err := x509.ParsePKIXPublicKey(pub)
	if err != nil {
		return false
	}
	key, ok := parsed.(*rsa.PublicKey)
	if !ok {
		return false
	}
	digest := sha256.Sum256(msg)
	return rsa.VerifyPSS(key, crypto.SHA256, digest[:], sig, &rsa.PSSOptions{
		SaltLength: rsa.PSSSaltLengthEqualsHash,
	}) == nil
}

// ed25519Scheme is Ed25519, the smallest and fastest classical baseline.
// It is naturally reproducible: keygen reads exactly 32 bytes from its rng
// (so seeded credential builds regenerate byte-identical keys) and signing
// is deterministic by construction — no detrand derivation needed.
type ed25519Scheme struct{}

func (ed25519Scheme) Name() string       { return "ed25519" }
func (ed25519Scheme) Level() int         { return 1 }
func (ed25519Scheme) Hybrid() bool       { return false }
func (ed25519Scheme) PublicKeySize() int { return ed25519.PublicKeySize }
func (ed25519Scheme) SignatureSize() int { return ed25519.SignatureSize }

func (ed25519Scheme) GenerateKey(rng io.Reader) (pub, priv []byte, err error) {
	if rng == nil {
		rng = rand.Reader
	}
	pk, sk, err := ed25519.GenerateKey(rng)
	if err != nil {
		return nil, nil, fmt.Errorf("sig ed25519: keygen: %w", err)
	}
	return pk, sk, nil
}

func (ed25519Scheme) Sign(priv, msg []byte) ([]byte, error) {
	if len(priv) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("sig ed25519: private key is %d bytes, want %d",
			len(priv), ed25519.PrivateKeySize)
	}
	return ed25519.Sign(ed25519.PrivateKey(priv), msg), nil
}

func (ed25519Scheme) Verify(pub, msg, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(ed25519.PublicKey(pub), msg, sig)
}

// ecdsaScheme is ECDSA with the curve's matching SHA-2 hash, used as the
// classical half of the hybrid signature suites.
type ecdsaScheme struct {
	name  string
	curve elliptic.Curve
	level int
}

func (e *ecdsaScheme) Name() string { return e.name }
func (e *ecdsaScheme) Level() int   { return e.level }
func (e *ecdsaScheme) Hybrid() bool { return false }

// PublicKeySize is the DER PKIX encoding of an uncompressed point.
func (e *ecdsaScheme) PublicKeySize() int {
	return 2*(e.curve.Params().BitSize+7)/8 + 27
}

// SignatureSize is the nominal DER-encoded (r, s) size.
func (e *ecdsaScheme) SignatureSize() int {
	return 2*(e.curve.Params().BitSize+7)/8 + 8
}

func (e *ecdsaScheme) GenerateKey(rng io.Reader) (pub, priv []byte, err error) {
	var key *ecdsa.PrivateKey
	if rng == nil {
		key, err = ecdsa.GenerateKey(e.curve, rand.Reader)
	} else {
		key, err = deterministicECDSAKey(e.curve, rng)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("sig %s: keygen: %w", e.name, err)
	}
	pub, err = x509.MarshalPKIXPublicKey(&key.PublicKey)
	if err != nil {
		return nil, nil, err
	}
	priv, err = x509.MarshalECPrivateKey(key)
	if err != nil {
		return nil, nil, err
	}
	return pub, priv, nil
}

// deterministicECDSAKey derives a key pair by reading a fixed number of
// bytes from rng, bypassing ecdsa.GenerateKey: the stdlib generator is
// deliberately non-reproducible from a seeded reader (it consumes a byte of
// the stream at random), which would defeat the seeded credential builds
// that keep regenerated tables byte-identical across worker counts. The
// eight extra bytes make the modular reduction's bias negligible.
func deterministicECDSAKey(curve elliptic.Curve, rng io.Reader) (*ecdsa.PrivateKey, error) {
	n := curve.Params().N
	buf := make([]byte, (n.BitLen()+7)/8+8)
	if _, err := io.ReadFull(rng, buf); err != nil {
		return nil, err
	}
	d := new(big.Int).SetBytes(buf)
	d.Mod(d, new(big.Int).Sub(n, big.NewInt(1)))
	d.Add(d, big.NewInt(1))
	key := &ecdsa.PrivateKey{D: d}
	key.Curve = curve
	key.X, key.Y = curve.ScalarBaseMult(d.Bytes())
	return key, nil
}

// hashToInt converts a digest to the integer the ECDSA equations use,
// mirroring the stdlib's truncation: keep the leftmost BitLen(N) bits.
func hashToInt(hash []byte, n *big.Int) *big.Int {
	orderBits := n.BitLen()
	orderBytes := (orderBits + 7) / 8
	if len(hash) > orderBytes {
		hash = hash[:orderBytes]
	}
	z := new(big.Int).SetBytes(hash)
	if excess := len(hash)*8 - orderBits; excess > 0 {
		z.Rsh(z, uint(excess))
	}
	return z
}

// Sign is deterministic in the style of RFC 6979: the nonce is derived from
// the private key and message digest, so identical inputs always yield the
// identical DER signature. ECDSA's DER length varies with the leading bits
// of (r, s), so randomized nonces would jitter certificate and
// CertificateVerify sizes between otherwise identical runs — the one
// remaining source of non-reproducibility in regenerated tables.
// Derandomized ECDSA also mirrors deployed practice (nonce reuse is
// catastrophic); the variable-time math/big arithmetic is fine for a
// simulator that never holds real secrets.
func (e *ecdsaScheme) Sign(priv, msg []byte) ([]byte, error) {
	key, err := x509.ParseECPrivateKey(priv)
	if err != nil {
		return nil, fmt.Errorf("sig %s: bad private key: %w", e.name, err)
	}
	digest := sha256.Sum256(msg)
	n := e.curve.Params().N
	z := hashToInt(digest[:], n)
	rng := newDetReader("pqtls-ecdsa-nonce", priv, digest[:])
	buf := make([]byte, (n.BitLen()+7)/8+8)
	for {
		if _, err := io.ReadFull(rng, buf); err != nil {
			return nil, err
		}
		k := new(big.Int).SetBytes(buf)
		k.Mod(k, new(big.Int).Sub(n, big.NewInt(1)))
		k.Add(k, big.NewInt(1))
		rx, _ := e.curve.ScalarBaseMult(k.Bytes())
		r := new(big.Int).Mod(rx, n)
		if r.Sign() == 0 {
			continue
		}
		s := new(big.Int).Mul(r, key.D)
		s.Add(s, z)
		s.Mul(s, new(big.Int).ModInverse(k, n))
		s.Mod(s, n)
		if s.Sign() == 0 {
			continue
		}
		return asn1.Marshal(struct{ R, S *big.Int }{r, s})
	}
}

func (e *ecdsaScheme) Verify(pub, msg, sig []byte) bool {
	parsed, err := x509.ParsePKIXPublicKey(pub)
	if err != nil {
		return false
	}
	key, ok := parsed.(*ecdsa.PublicKey)
	if !ok {
		return false
	}
	digest := sha256.Sum256(msg)
	return ecdsa.VerifyASN1(key, digest[:], sig)
}
