package sig

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"fmt"
	"io"
	"sync"
)

// rsaScheme is RSA-PSS with SHA-256, the RSA mode of TLS 1.3.
type rsaScheme struct {
	name  string
	bits  int
	level int
}

// rsaKeyCache holds one long-lived key per modulus size. The paper's server
// certificates are fixed per run; regenerating a 4096-bit modulus per
// handshake would measure keygen, not TLS. Each size is a singleflight
// entry: concurrent first callers for one modulus size block on that
// entry's Once while other sizes proceed independently.
type rsaKeyEntry struct {
	once sync.Once
	key  *rsa.PrivateKey
	err  error
}

var rsaKeyCache = struct {
	mu sync.Mutex
	m  map[int]*rsaKeyEntry
}{m: map[int]*rsaKeyEntry{}}

func cachedRSAKey(bits int) (*rsa.PrivateKey, error) {
	rsaKeyCache.mu.Lock()
	e, ok := rsaKeyCache.m[bits]
	if !ok {
		e = &rsaKeyEntry{}
		rsaKeyCache.m[bits] = e
	}
	rsaKeyCache.mu.Unlock()
	e.once.Do(func() { e.key, e.err = rsa.GenerateKey(rand.Reader, bits) })
	return e.key, e.err
}

func (r *rsaScheme) Name() string { return r.name }
func (r *rsaScheme) Level() int   { return r.level }
func (r *rsaScheme) Hybrid() bool { return false }

// PublicKeySize is the DER-encoded PKIX size (modulus + exponent + ASN.1).
func (r *rsaScheme) PublicKeySize() int { return r.bits/8 + 38 }

// SignatureSize equals the modulus size for RSA.
func (r *rsaScheme) SignatureSize() int { return r.bits / 8 }

func (r *rsaScheme) GenerateKey(rng io.Reader) (pub, priv []byte, err error) {
	var key *rsa.PrivateKey
	if rng == nil {
		key, err = cachedRSAKey(r.bits)
	} else {
		key, err = rsa.GenerateKey(rng, r.bits)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("sig %s: keygen: %w", r.name, err)
	}
	pub, err = x509.MarshalPKIXPublicKey(&key.PublicKey)
	if err != nil {
		return nil, nil, fmt.Errorf("sig %s: marshal public key: %w", r.name, err)
	}
	return pub, x509.MarshalPKCS1PrivateKey(key), nil
}

func (r *rsaScheme) Sign(priv, msg []byte) ([]byte, error) {
	key, err := x509.ParsePKCS1PrivateKey(priv)
	if err != nil {
		return nil, fmt.Errorf("sig %s: bad private key: %w", r.name, err)
	}
	digest := sha256.Sum256(msg)
	return rsa.SignPSS(rand.Reader, key, crypto.SHA256, digest[:], &rsa.PSSOptions{
		SaltLength: rsa.PSSSaltLengthEqualsHash,
	})
}

func (r *rsaScheme) Verify(pub, msg, sig []byte) bool {
	parsed, err := x509.ParsePKIXPublicKey(pub)
	if err != nil {
		return false
	}
	key, ok := parsed.(*rsa.PublicKey)
	if !ok {
		return false
	}
	digest := sha256.Sum256(msg)
	return rsa.VerifyPSS(key, crypto.SHA256, digest[:], sig, &rsa.PSSOptions{
		SaltLength: rsa.PSSSaltLengthEqualsHash,
	}) == nil
}

// ecdsaScheme is ECDSA with the curve's matching SHA-2 hash, used as the
// classical half of the hybrid signature suites.
type ecdsaScheme struct {
	name  string
	curve elliptic.Curve
	level int
}

func (e *ecdsaScheme) Name() string { return e.name }
func (e *ecdsaScheme) Level() int   { return e.level }
func (e *ecdsaScheme) Hybrid() bool { return false }

// PublicKeySize is the DER PKIX encoding of an uncompressed point.
func (e *ecdsaScheme) PublicKeySize() int {
	return 2*(e.curve.Params().BitSize+7)/8 + 27
}

// SignatureSize is the nominal DER-encoded (r, s) size.
func (e *ecdsaScheme) SignatureSize() int {
	return 2*(e.curve.Params().BitSize+7)/8 + 8
}

func (e *ecdsaScheme) GenerateKey(rng io.Reader) (pub, priv []byte, err error) {
	if rng == nil {
		rng = rand.Reader
	}
	key, err := ecdsa.GenerateKey(e.curve, rng)
	if err != nil {
		return nil, nil, fmt.Errorf("sig %s: keygen: %w", e.name, err)
	}
	pub, err = x509.MarshalPKIXPublicKey(&key.PublicKey)
	if err != nil {
		return nil, nil, err
	}
	priv, err = x509.MarshalECPrivateKey(key)
	if err != nil {
		return nil, nil, err
	}
	return pub, priv, nil
}

func (e *ecdsaScheme) Sign(priv, msg []byte) ([]byte, error) {
	key, err := x509.ParseECPrivateKey(priv)
	if err != nil {
		return nil, fmt.Errorf("sig %s: bad private key: %w", e.name, err)
	}
	digest := sha256.Sum256(msg)
	return ecdsa.SignASN1(rand.Reader, key, digest[:])
}

func (e *ecdsaScheme) Verify(pub, msg, sig []byte) bool {
	parsed, err := x509.ParsePKIXPublicKey(pub)
	if err != nil {
		return false
	}
	key, ok := parsed.(*ecdsa.PublicKey)
	if !ok {
		return false
	}
	digest := sha256.Sum256(msg)
	return ecdsa.VerifyASN1(key, digest[:], sig)
}
