package sig

import (
	"fmt"
	"io"
)

// composite combines a classical and a PQ signature per the composite-
// signatures approach (draft-ounsworth-pq-composite-sigs): both schemes sign
// the same message, both signatures travel on the wire, and verification
// requires both — so the PKI stays secure unless both schemes are broken.
type composite struct {
	name    string
	classic Scheme
	pq      Scheme
	level   int
}

func newComposite(name string, classic, pq Scheme, level int) Scheme {
	return &composite{name: name, classic: classic, pq: pq, level: level}
}

func (c *composite) Name() string { return c.name }
func (c *composite) Level() int   { return c.level }
func (c *composite) Hybrid() bool { return true }

func (c *composite) PublicKeySize() int {
	return 4 + c.classic.PublicKeySize() + c.pq.PublicKeySize()
}

func (c *composite) SignatureSize() int {
	return 4 + c.classic.SignatureSize() + c.pq.SignatureSize()
}

func (c *composite) GenerateKey(rng io.Reader) (pub, priv []byte, err error) {
	cPub, cPriv, err := c.classic.GenerateKey(rng)
	if err != nil {
		return nil, nil, err
	}
	pPub, pPriv, err := c.pq.GenerateKey(rng)
	if err != nil {
		return nil, nil, err
	}
	return join(cPub, pPub), join(cPriv, pPriv), nil
}

func (c *composite) Sign(priv, msg []byte) ([]byte, error) {
	cPriv, pPriv, err := split(priv)
	if err != nil {
		return nil, fmt.Errorf("sig %s: %w", c.name, err)
	}
	cSig, err := c.classic.Sign(cPriv, msg)
	if err != nil {
		return nil, err
	}
	pSig, err := c.pq.Sign(pPriv, msg)
	if err != nil {
		return nil, err
	}
	return join(cSig, pSig), nil
}

func (c *composite) Verify(pub, msg, sig []byte) bool {
	cPub, pPub, err := split(pub)
	if err != nil {
		return false
	}
	cSig, pSig, err := split(sig)
	if err != nil {
		return false
	}
	return c.classic.Verify(cPub, msg, cSig) && c.pq.Verify(pPub, msg, pSig)
}

// join concatenates two values with a 4-byte length prefix on the first
// (classical encodings are variable-size).
func join(a, b []byte) []byte {
	out := make([]byte, 0, 4+len(a)+len(b))
	out = append(out, byte(len(a)>>24), byte(len(a)>>16), byte(len(a)>>8), byte(len(a)))
	out = append(out, a...)
	return append(out, b...)
}

func split(v []byte) (a, b []byte, err error) {
	if len(v) < 4 {
		return nil, nil, fmt.Errorf("truncated composite value")
	}
	n := int(v[0])<<24 | int(v[1])<<16 | int(v[2])<<8 | int(v[3])
	if n < 0 || len(v) < 4+n {
		return nil, nil, fmt.Errorf("malformed composite value")
	}
	return v[4 : 4+n], v[4+n:], nil
}
