package sig

import (
	"bytes"
	"testing"
)

// TestContextsMatchScheme pins NewSigner/NewVerifier against the one-shot
// Scheme paths for a precomputed scheme (dilithium3), a fallback scheme
// (falcon512, variable-length signatures), and a composite hybrid.
func TestContextsMatchScheme(t *testing.T) {
	for _, name := range []string{"dilithium3", "falcon512", "p384_dilithium3"} {
		s := MustByName(name)
		pub, priv, err := s.GenerateKey(newDetReader("ctx-" + name))
		if err != nil {
			t.Fatal(err)
		}
		signer := NewSigner(s, priv)
		verifier := NewVerifier(s, pub)
		for trial := 0; trial < 4; trial++ {
			msg := []byte{byte(trial), 0x5A, byte(trial * 7)}
			want, err := s.Sign(priv, msg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := signer.Sign(msg)
			if err != nil {
				t.Fatal(err)
			}
			// Deterministic schemes must match exactly; all must cross-verify.
			if name != "falcon512" && !bytes.Equal(got, want) {
				t.Fatalf("%s trial %d: Signer.Sign differs from Scheme.Sign", name, trial)
			}
			if !verifier.Verify(msg, got) || !s.Verify(pub, msg, got) {
				t.Fatalf("%s trial %d: context signature rejected", name, trial)
			}
			if verifier.Verify(msg, want) != s.Verify(pub, msg, want) {
				t.Fatalf("%s trial %d: verifier disagrees with scheme", name, trial)
			}
			bad := append([]byte(nil), got...)
			bad[len(bad)/2] ^= 1
			if verifier.Verify(msg, bad) {
				t.Fatalf("%s trial %d: Verifier accepts corrupted signature", name, trial)
			}
		}
	}
}

// TestVerifierCache checks memoization and the capacity bound.
func TestVerifierCache(t *testing.T) {
	s := MustByName("dilithium2")
	pub, priv, err := s.GenerateKey(newDetReader("cache"))
	if err != nil {
		t.Fatal(err)
	}
	c := NewVerifierCache(2)
	v1 := c.For(s, pub)
	if v2 := c.For(s, pub); v2 != v1 {
		t.Fatal("cache missed on identical key")
	}
	msg := []byte("cached verify")
	sig, err := s.Sign(priv, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !v1.Verify(msg, sig) {
		t.Fatal("cached verifier rejects valid signature")
	}
	// Overflow the capacity with distinct keys; the cache must stay bounded
	// and keep working.
	for i := 0; i < 5; i++ {
		pub2, _, err := s.GenerateKey(newDetReader(string(rune('a' + i))))
		if err != nil {
			t.Fatal(err)
		}
		c.For(s, pub2)
	}
	c.mu.Lock()
	n := len(c.m)
	c.mu.Unlock()
	if n > 2 {
		t.Fatalf("cache grew to %d entries, capacity 2", n)
	}
	if !c.For(s, pub).Verify(msg, sig) {
		t.Fatal("rebuilt verifier rejects valid signature")
	}
}

// TestVerifierCacheChurnStats is the churn regression test: a key
// population far above the cap must keep the cache bounded while the
// hit/miss/eviction counters account exactly for every lookup.
func TestVerifierCacheChurnStats(t *testing.T) {
	s := MustByName("dilithium2")
	const cap = 4
	c := NewVerifierCache(cap)
	pubs := make([][]byte, 12)
	for i := range pubs {
		pub, _, err := s.GenerateKey(newDetReader("churn" + string(rune('A'+i))))
		if err != nil {
			t.Fatal(err)
		}
		pubs[i] = pub
	}
	// Three rounds over 12 keys against a 4-entry cache: every round churns
	// the whole population through, so later rounds keep missing.
	lookups := 0
	for round := 0; round < 3; round++ {
		for _, pub := range pubs {
			if c.For(s, pub) == nil {
				t.Fatal("nil verifier")
			}
			lookups++
		}
	}
	st := c.Stats()
	if st.Entries > cap {
		t.Fatalf("cache grew to %d entries, capacity %d", st.Entries, cap)
	}
	if st.Hits+st.Misses != uint64(lookups) {
		t.Fatalf("hits %d + misses %d != %d lookups", st.Hits, st.Misses, lookups)
	}
	if st.Misses < uint64(len(pubs)) {
		t.Fatalf("only %d misses across %d distinct keys", st.Misses, len(pubs))
	}
	if st.Evictions == 0 {
		t.Fatal("churn produced no evictions")
	}
	if st.Evictions != st.Misses-uint64(st.Entries) {
		t.Fatalf("evictions %d != misses %d - entries %d", st.Evictions, st.Misses, st.Entries)
	}
}

// TestBatchVerifierAssertion pins that the cached dilithium verifier
// supports batch verification through the BatchVerifier interface and that
// batched decisions match sequential ones.
func TestBatchVerifierAssertion(t *testing.T) {
	s := MustByName("dilithium3")
	pub, priv, err := s.GenerateKey(newDetReader("batch-assert"))
	if err != nil {
		t.Fatal(err)
	}
	c := NewVerifierCache(0)
	v := c.For(s, pub)
	bv, ok := v.(BatchVerifier)
	if !ok {
		t.Fatal("cached dilithium verifier does not implement BatchVerifier")
	}
	msgs := make([][]byte, 3)
	sigs := make([][]byte, 3)
	for i := range msgs {
		msgs[i] = []byte{byte(i), 0xC3}
		if sigs[i], err = s.Sign(priv, msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	sigs[1][50] ^= 1
	got := bv.VerifyBatch(msgs, sigs)
	for i := range msgs {
		if want := v.Verify(msgs[i], sigs[i]); got[i] != want {
			t.Fatalf("item %d: VerifyBatch=%v, Verify=%v", i, got[i], want)
		}
	}
	// Classical schemes must simply not satisfy the assertion.
	e := MustByName("ecdsa-p256")
	epub, _, err := e.GenerateKey(newDetReader("batch-assert-ec"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := NewVerifier(e, epub).(BatchVerifier); ok {
		t.Fatal("classical verifier unexpectedly implements BatchVerifier")
	}
}
