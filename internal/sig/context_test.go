package sig

import (
	"bytes"
	"testing"
)

// TestContextsMatchScheme pins NewSigner/NewVerifier against the one-shot
// Scheme paths for a precomputed scheme (dilithium3), a fallback scheme
// (falcon512, variable-length signatures), and a composite hybrid.
func TestContextsMatchScheme(t *testing.T) {
	for _, name := range []string{"dilithium3", "falcon512", "p384_dilithium3"} {
		s := MustByName(name)
		pub, priv, err := s.GenerateKey(newDetReader("ctx-" + name))
		if err != nil {
			t.Fatal(err)
		}
		signer := NewSigner(s, priv)
		verifier := NewVerifier(s, pub)
		for trial := 0; trial < 4; trial++ {
			msg := []byte{byte(trial), 0x5A, byte(trial * 7)}
			want, err := s.Sign(priv, msg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := signer.Sign(msg)
			if err != nil {
				t.Fatal(err)
			}
			// Deterministic schemes must match exactly; all must cross-verify.
			if name != "falcon512" && !bytes.Equal(got, want) {
				t.Fatalf("%s trial %d: Signer.Sign differs from Scheme.Sign", name, trial)
			}
			if !verifier.Verify(msg, got) || !s.Verify(pub, msg, got) {
				t.Fatalf("%s trial %d: context signature rejected", name, trial)
			}
			if verifier.Verify(msg, want) != s.Verify(pub, msg, want) {
				t.Fatalf("%s trial %d: verifier disagrees with scheme", name, trial)
			}
			bad := append([]byte(nil), got...)
			bad[len(bad)/2] ^= 1
			if verifier.Verify(msg, bad) {
				t.Fatalf("%s trial %d: Verifier accepts corrupted signature", name, trial)
			}
		}
	}
}

// TestVerifierCache checks memoization and the capacity bound.
func TestVerifierCache(t *testing.T) {
	s := MustByName("dilithium2")
	pub, priv, err := s.GenerateKey(newDetReader("cache"))
	if err != nil {
		t.Fatal(err)
	}
	c := NewVerifierCache(2)
	v1 := c.For(s, pub)
	if v2 := c.For(s, pub); v2 != v1 {
		t.Fatal("cache missed on identical key")
	}
	msg := []byte("cached verify")
	sig, err := s.Sign(priv, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !v1.Verify(msg, sig) {
		t.Fatal("cached verifier rejects valid signature")
	}
	// Overflow the capacity with distinct keys; the cache must stay bounded
	// and keep working.
	for i := 0; i < 5; i++ {
		pub2, _, err := s.GenerateKey(newDetReader(string(rune('a' + i))))
		if err != nil {
			t.Fatal(err)
		}
		c.For(s, pub2)
	}
	c.mu.Lock()
	n := len(c.m)
	c.mu.Unlock()
	if n > 2 {
		t.Fatalf("cache grew to %d entries, capacity 2", n)
	}
	if !c.For(s, pub).Verify(msg, sig) {
		t.Fatal("rebuilt verifier rejects valid signature")
	}
}
