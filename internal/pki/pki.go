// Package pki implements a minimal x509-style public key infrastructure
// with pluggable (including post-quantum) signature algorithms: TLV-encoded
// certificates, issuance, and chain verification against a root store.
//
// Certificate size is a first-order effect in the paper (PQ signatures blow
// up the Certificate message), so the encoding overhead here is kept small
// and constant; the payload is dominated by the embedded public key and the
// issuer's signature exactly as in DER.
package pki

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"pqtls/internal/sig"
)

// Certificate binds a subject name to a public key under a signature
// algorithm, signed by an issuer.
type Certificate struct {
	Serial    uint64
	Subject   string
	Issuer    string
	Algorithm string // sig.Scheme name of the *subject's* key
	SigAlg    string // sig.Scheme name the *issuer* signed with
	PublicKey []byte
	Signature []byte
}

// Chain is what a TLS server presents: the leaf first, optional
// intermediates after, root omitted (the client has it).
type Chain struct {
	Certificates []*Certificate
	PrivateKey   []byte // leaf private key
}

// Pool is a set of trusted root certificates.
type Pool struct {
	roots map[string]*Certificate // by subject
}

// NewPool creates a pool from root certificates.
func NewPool(roots ...*Certificate) *Pool {
	p := &Pool{roots: make(map[string]*Certificate, len(roots))}
	for _, r := range roots {
		p.roots[r.Subject] = r
	}
	return p
}

// Errors returned by chain verification.
var (
	ErrUnknownRoot  = errors.New("pki: issuer not found in root pool")
	ErrBadSignature = errors.New("pki: certificate signature invalid")
	ErrEmptyChain   = errors.New("pki: empty certificate chain")
)

// tbsBytes returns the to-be-signed encoding (everything but the signature).
func (c *Certificate) tbsBytes() []byte {
	var b bytes.Buffer
	writeTBS(&b, c)
	return b.Bytes()
}

func writeTBS(b *bytes.Buffer, c *Certificate) {
	var serial [8]byte
	binary.BigEndian.PutUint64(serial[:], c.Serial)
	b.Write(serial[:])
	writeStr(b, c.Subject)
	writeStr(b, c.Issuer)
	writeStr(b, c.Algorithm)
	writeStr(b, c.SigAlg)
	writeBytes(b, c.PublicKey)
}

// Marshal encodes the certificate.
func (c *Certificate) Marshal() []byte {
	var b bytes.Buffer
	writeTBS(&b, c)
	writeBytes(&b, c.Signature)
	return b.Bytes()
}

// Unmarshal decodes a certificate produced by Marshal.
func Unmarshal(data []byte) (*Certificate, error) {
	r := bytes.NewReader(data)
	c := &Certificate{}
	var serial [8]byte
	if _, err := io.ReadFull(r, serial[:]); err != nil {
		return nil, fmt.Errorf("pki: truncated serial: %w", err)
	}
	c.Serial = binary.BigEndian.Uint64(serial[:])
	var err error
	if c.Subject, err = readStr(r); err != nil {
		return nil, err
	}
	if c.Issuer, err = readStr(r); err != nil {
		return nil, err
	}
	if c.Algorithm, err = readStr(r); err != nil {
		return nil, err
	}
	if c.SigAlg, err = readStr(r); err != nil {
		return nil, err
	}
	if c.PublicKey, err = readBytes(r); err != nil {
		return nil, err
	}
	if c.Signature, err = readBytes(r); err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, errors.New("pki: trailing bytes after certificate")
	}
	return c, nil
}

// SelfSigned creates a self-signed root certificate for the given scheme.
func SelfSigned(subject string, scheme sig.Scheme, rng io.Reader) (*Certificate, []byte, error) {
	pub, priv, err := scheme.GenerateKey(rng)
	if err != nil {
		return nil, nil, err
	}
	cert := &Certificate{
		Serial:    1,
		Subject:   subject,
		Issuer:    subject,
		Algorithm: scheme.Name(),
		SigAlg:    scheme.Name(),
		PublicKey: pub,
	}
	cert.Signature, err = scheme.Sign(priv, cert.tbsBytes())
	if err != nil {
		return nil, nil, err
	}
	return cert, priv, nil
}

// Issue creates a certificate for subjectPub signed by the issuer.
func Issue(serial uint64, subject string, subjectAlg string, subjectPub []byte,
	issuer *Certificate, issuerPriv []byte) (*Certificate, error) {
	scheme, err := sig.ByName(issuer.Algorithm)
	if err != nil {
		return nil, err
	}
	cert := &Certificate{
		Serial:    serial,
		Subject:   subject,
		Issuer:    issuer.Subject,
		Algorithm: subjectAlg,
		SigAlg:    scheme.Name(),
		PublicKey: subjectPub,
	}
	cert.Signature, err = scheme.Sign(issuerPriv, cert.tbsBytes())
	if err != nil {
		return nil, err
	}
	return cert, nil
}

// Verify checks a presented chain: every certificate must be signed by its
// successor (or by a pool root for the last one), and signatures must be
// valid. It returns the leaf on success.
func (p *Pool) Verify(chain []*Certificate) (*Certificate, error) {
	if len(chain) == 0 {
		return nil, ErrEmptyChain
	}
	for i, cert := range chain {
		var issuerCert *Certificate
		if i+1 < len(chain) {
			issuerCert = chain[i+1]
		} else {
			root, ok := p.roots[cert.Issuer]
			if !ok {
				return nil, fmt.Errorf("%w: %q", ErrUnknownRoot, cert.Issuer)
			}
			issuerCert = root
		}
		scheme, err := sig.ByName(cert.SigAlg)
		if err != nil {
			return nil, err
		}
		if scheme.Name() != issuerCert.Algorithm {
			return nil, fmt.Errorf("pki: certificate %q signed with %s but issuer key is %s",
				cert.Subject, cert.SigAlg, issuerCert.Algorithm)
		}
		if !scheme.Verify(issuerCert.PublicKey, cert.tbsBytes(), cert.Signature) {
			return nil, fmt.Errorf("%w: %q", ErrBadSignature, cert.Subject)
		}
	}
	return chain[0], nil
}

func writeStr(b *bytes.Buffer, s string) {
	if len(s) > 0xFFFF {
		panic("pki: string too long")
	}
	b.WriteByte(byte(len(s) >> 8))
	b.WriteByte(byte(len(s)))
	b.WriteString(s)
}

func readStr(r *bytes.Reader) (string, error) {
	b, err := readN(r, 2)
	if err != nil {
		return "", err
	}
	v, err := readN(r, int(b[0])<<8|int(b[1]))
	if err != nil {
		return "", err
	}
	return string(v), nil
}

func writeBytes(b *bytes.Buffer, v []byte) {
	if len(v) > 0xFFFFFF {
		panic("pki: value too long")
	}
	b.WriteByte(byte(len(v) >> 16))
	b.WriteByte(byte(len(v) >> 8))
	b.WriteByte(byte(len(v)))
	b.Write(v)
}

func readBytes(r *bytes.Reader) ([]byte, error) {
	b, err := readN(r, 3)
	if err != nil {
		return nil, err
	}
	return readN(r, int(b[0])<<16|int(b[1])<<8|int(b[2]))
}

func readN(r *bytes.Reader, n int) ([]byte, error) {
	out := make([]byte, n)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, fmt.Errorf("pki: truncated field: %w", err)
	}
	return out, nil
}
