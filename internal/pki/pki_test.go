package pki

import (
	"testing"

	"pqtls/internal/sig"
)

// issueTestChain builds root -> leaf with the given algorithms.
func issueTestChain(t *testing.T, rootAlg, leafAlg string) (*Pool, []*Certificate, []byte) {
	t.Helper()
	rootScheme := sig.MustByName(rootAlg)
	root, rootPriv, err := SelfSigned("Test Root CA", rootScheme, nil)
	if err != nil {
		t.Fatal(err)
	}
	leafScheme := sig.MustByName(leafAlg)
	leafPub, leafPriv, err := leafScheme.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := Issue(2, "server.example", leafAlg, leafPub, root, rootPriv)
	if err != nil {
		t.Fatal(err)
	}
	return NewPool(root), []*Certificate{leaf}, leafPriv
}

func TestVerifyChain(t *testing.T) {
	t.Parallel()
	cases := []struct{ root, leaf string }{
		{"rsa:2048", "rsa:2048"},
		{"rsa:2048", "dilithium2"},
		{"dilithium3", "dilithium3"},
		{"falcon512", "falcon512"},
		{"rsa:2048", "p256_dilithium2"},
	}
	for _, c := range cases {
		pool, chain, _ := issueTestChain(t, c.root, c.leaf)
		leaf, err := pool.Verify(chain)
		if err != nil {
			t.Errorf("%s->%s: %v", c.root, c.leaf, err)
			continue
		}
		if leaf.Subject != "server.example" {
			t.Errorf("%s->%s: wrong leaf %q", c.root, c.leaf, leaf.Subject)
		}
	}
}

func TestVerifyRejectsTamper(t *testing.T) {
	t.Parallel()
	pool, chain, _ := issueTestChain(t, "rsa:2048", "dilithium2")
	chain[0].Subject = "evil.example"
	if _, err := pool.Verify(chain); err == nil {
		t.Error("tampered certificate accepted")
	}
}

func TestVerifyUnknownRoot(t *testing.T) {
	t.Parallel()
	_, chain, _ := issueTestChain(t, "rsa:2048", "rsa:2048")
	empty := NewPool()
	if _, err := empty.Verify(chain); err == nil {
		t.Error("chain accepted with empty root pool")
	}
	if _, err := empty.Verify(nil); err == nil {
		t.Error("empty chain accepted")
	}
}

func TestIntermediate(t *testing.T) {
	t.Parallel()
	rootScheme := sig.MustByName("rsa:2048")
	root, rootPriv, err := SelfSigned("Root", rootScheme, nil)
	if err != nil {
		t.Fatal(err)
	}
	intScheme := sig.MustByName("dilithium2")
	intPub, intPriv, err := intScheme.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	intermediate, err := Issue(2, "Intermediate", "dilithium2", intPub, root, rootPriv)
	if err != nil {
		t.Fatal(err)
	}
	leafScheme := sig.MustByName("falcon512")
	leafPub, _, err := leafScheme.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := Issue(3, "leaf.example", "falcon512", leafPub, intermediate, intPriv)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(root)
	if _, err := pool.Verify([]*Certificate{leaf, intermediate}); err != nil {
		t.Errorf("three-level chain rejected: %v", err)
	}
	// Wrong order must fail.
	if _, err := pool.Verify([]*Certificate{intermediate, leaf}); err == nil {
		t.Error("out-of-order chain accepted")
	}
}

func TestMarshalRoundtrip(t *testing.T) {
	t.Parallel()
	_, chain, _ := issueTestChain(t, "rsa:2048", "dilithium2")
	data := chain[0].Marshal()
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Subject != chain[0].Subject || back.Algorithm != chain[0].Algorithm {
		t.Error("roundtrip changed fields")
	}
	if _, err := Unmarshal(data[:10]); err == nil {
		t.Error("truncated certificate accepted")
	}
	if _, err := Unmarshal(append(data, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// Certificate encoding overhead must stay small and constant: the PQ blowup
// the paper measures comes from keys/signatures, not our framing.
func TestEncodingOverhead(t *testing.T) {
	t.Parallel()
	_, chain, _ := issueTestChain(t, "rsa:2048", "dilithium2")
	c := chain[0]
	overhead := len(c.Marshal()) - len(c.PublicKey) - len(c.Signature)
	if overhead > 120 {
		t.Errorf("encoding overhead %d bytes, want <= 120", overhead)
	}
}
