// Kernel-level benchmarks for the hot crypto paths the paper's white-box
// profile (Table 3) identifies as handshake-dominant: Keccak hashing, NTT
// polynomial arithmetic, GF(2)[x] multiplication, and full scheme
// operations built on them. `pqbench microbench` runs the same kernels
// programmatically and emits BENCH_*.json; these benchmarks are the
// `go test -bench` face of the same inventory (see DESIGN.md,
// "Performance engineering").
package pqtls_test

import (
	"io"
	"testing"
	"time"

	"pqtls"
	"pqtls/internal/crypto/gf2x"
	"pqtls/internal/crypto/mldsa"
	"pqtls/internal/crypto/mlkem"
	"pqtls/internal/crypto/sha3"
	"pqtls/internal/crypto/sphincs"
	"pqtls/internal/harness"
	"pqtls/internal/obs"
	"pqtls/internal/tls13"
)

// benchDRBG returns a deterministic byte stream so benchmark iterations are
// reproducible across runs and machines.
func benchDRBG(label string) io.Reader {
	x := sha3.NewShake128()
	x.Write([]byte("pqtls-kernel-bench/" + label))
	return x
}

func BenchmarkSHA3Sum256(b *testing.B) {
	buf := make([]byte, 136) // one SHA3-256 rate block
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		_ = sha3.Sum256(buf)
	}
}

func BenchmarkShakeSum256(b *testing.B) {
	in := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = sha3.ShakeSum256(64, in)
	}
}

func BenchmarkKyber768(b *testing.B) {
	p := mlkem.Kyber768
	drbg := benchDRBG("kyber768")
	pk, sk, err := p.GenerateKey(drbg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("keygen", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := p.GenerateKey(drbg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := p.Encapsulate(drbg, pk); err != nil {
				b.Fatal(err)
			}
		}
	})
	ct, _, err := p.Encapsulate(drbg, pk)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.Decapsulate(sk, ct); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDilithium3(b *testing.B) {
	p := mldsa.Dilithium3
	drbg := benchDRBG("dilithium3")
	pk, sk, err := p.GenerateKey(drbg)
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("the performance of post-quantum tls 1.3")
	b.Run("sign", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.Sign(sk, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	sigBytes, err := p.Sign(sk, msg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("verify", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !p.Verify(pk, msg, sigBytes) {
				b.Fatal("verify failed")
			}
		}
	})
}

func BenchmarkSphincs128Sign(b *testing.B) {
	p := sphincs.SPHINCS128f
	drbg := benchDRBG("sphincs128")
	pk, sk, err := p.GenerateKey(drbg)
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("the performance of post-quantum tls 1.3")
	b.Run("sign", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.Sign(sk, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	sigBytes, err := p.Sign(sk, msg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("verify", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !p.Verify(pk, msg, sigBytes) {
				b.Fatal("verify failed")
			}
		}
	})
}

func BenchmarkGF2xMulSparse(b *testing.B) {
	// HQC-128 shapes: r = 17669 bits, weight-75 sparse operand.
	const r, w = 17669, 75
	drbg := benchDRBG("gf2x")
	dense, err := gf2x.Random(drbg, r)
	if err != nil {
		b.Fatal(err)
	}
	sup, err := gf2x.RandomSupport(drbg, r, w)
	if err != nil {
		b.Fatal(err)
	}
	dst := gf2x.New(r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dense.MulSparse(dst, sup)
	}
}

// BenchmarkHandshakeKyber768Dilithium3 is the headline end-to-end compute
// benchmark: one full sans-IO handshake (no simulated network) for the
// paper's recommended PQ suite.
func BenchmarkHandshakeKyber768Dilithium3(b *testing.B) {
	benchHandshake(b, "kyber768", "dilithium3")
}

func BenchmarkHandshakeX25519Ed25519(b *testing.B) {
	benchHandshake(b, "x25519", "ed25519")
}

func benchHandshake(b *testing.B, kemName, sigName string) {
	creds, err := harness.CredentialsFor(sigName, 1)
	if err != nil {
		b.Fatal(err)
	}
	run := func() error {
		srv, err := pqtls.NewServer(&pqtls.Config{
			KEMName: kemName, SigName: sigName, ServerName: "server.example",
			Chain: creds.Chain, PrivateKey: creds.Priv,
		})
		if err != nil {
			return err
		}
		cli, err := pqtls.NewClient(&pqtls.Config{
			KEMName: kemName, SigName: sigName, ServerName: "server.example",
			Roots: creds.Roots,
		})
		if err != nil {
			return err
		}
		ch, err := cli.Start()
		if err != nil {
			return err
		}
		flushes, err := srv.Respond(ch)
		if err != nil {
			return err
		}
		var final []pqtls.Record
		for _, f := range flushes {
			out, done, err := cli.Consume(f.Records)
			if err != nil {
				return err
			}
			if done {
				final = out
			}
		}
		return srv.Finish(final)
	}
	if err := run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKeySchedule runs one full server-side HKDF derivation chain
// (early → handshake → master secrets, both traffic pairs, finished MACs)
// through the scratch-buffer key schedule. It must report 0 allocs/op:
// this chain runs once per accepted handshake.
func BenchmarkKeySchedule(b *testing.B) {
	ks := tls13.NewKeyScheduleKernel()
	ss := make([]byte, 32)
	transcript := make([]byte, 512)
	benchDRBG("keyschedule").Read(ss)
	benchDRBG("keyschedule-transcript").Read(transcript)
	b.ReportAllocs()
	b.ResetTimer()
	var sink byte
	for i := 0; i < b.N; i++ {
		sink ^= ks.Run(ss, transcript)
	}
	_ = sink
}

// BenchmarkTicketSealOpen measures a session-ticket issue + redeem round
// trip on the key-sharded store (cached AEAD, atomic counters).
func BenchmarkTicketSealOpen(b *testing.B) {
	ts := tls13.NewTicketStore([16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	psk := make([]byte, 32)
	benchDRBG("ticket").Read(psk)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tkt, err := ts.Seal(psk, "kyber768")
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := ts.Open(tkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindowRecord measures the windowed-telemetry hot path: recording
// a completion into a window that already exists. It must report 0
// allocs/op — this runs once per handshake whenever -window is set, and
// window creation is amortized over the interval, never paid per event.
func BenchmarkWindowRecord(b *testing.B) {
	tl := obs.NewTimeline(100 * time.Millisecond)
	for i := 0; i < 64; i++ {
		tl.RecordStart(time.Duration(i) * 100 * time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := time.Duration(i%64) * 100 * time.Millisecond
		tl.RecordComplete(at, time.Millisecond, i%4 == 0, false)
	}
}

// BenchmarkWindowMerge measures the coordinator's per-progress-frame fold
// of one worker timeline snapshot into the fleet rollup (32 active
// windows). Cloning allocates by design; this pins ns/op.
func BenchmarkWindowMerge(b *testing.B) {
	src := obs.NewTimeline(100 * time.Millisecond)
	for i := 0; i < 32; i++ {
		at := time.Duration(i) * 100 * time.Millisecond
		src.RecordStart(at)
		src.RecordComplete(at+time.Millisecond, time.Duration(i+1)*time.Millisecond, i%2 == 0, false)
	}
	dst := obs.NewTimeline(100 * time.Millisecond)
	if err := dst.Merge(src); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dst.Merge(src); err != nil {
			b.Fatal(err)
		}
	}
}
