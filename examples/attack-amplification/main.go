// Attack-amplification example: Section 5.5 of the paper.
//
// PQ TLS can be highly asymmetric: a small spoofed ClientHello can elicit a
// server flight up to ~96x larger (amplification), and server CPU cost can
// exceed the client's several-fold (computational DoS). Both levers are
// dominated by the signature algorithm choice. This example measures the
// asymmetry for a few certificate algorithms and compares against QUIC's
// mandated 3x amplification limit.
package main

import (
	"fmt"
	"log"

	"pqtls"
)

func main() {
	sigs := []string{"rsa:2048", "falcon512", "dilithium2", "dilithium5", "sphincs128", "sphincs256"}

	fmt.Println("Handshake asymmetry by certificate algorithm (KA fixed to x25519)")
	fmt.Println()
	fmt.Printf("%-12s %10s %10s %14s %14s\n", "SA", "client B", "server B", "amplification", "CPU srv/cli")
	worst := 0.0
	worstName := ""
	for _, s := range sigs {
		r, err := pqtls.RunCampaign(pqtls.CampaignOptions{
			KEM: "x25519", Sig: s, Link: pqtls.ScenarioTestbed,
			Buffer: pqtls.BufferImmediate, Samples: 7, Seed: 11, Profile: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		amp := float64(r.ServerBytes) / float64(r.ClientBytes)
		cpu := float64(r.ServerCPU) / float64(r.ClientCPU)
		fmt.Printf("%-12s %9dB %9dB %13.1fx %13.1fx\n", s, r.ClientBytes, r.ServerBytes, amp, cpu)
		if amp > worst {
			worst, worstName = amp, s
		}
	}
	fmt.Println()
	fmt.Printf("worst amplification: %.1fx (%s) — QUIC caps amplification at 3x\n", worst, worstName)
	fmt.Println("mitigations: prefer compact SAs (Falcon), validate source addresses,")
	fmt.Println("and rate-limit handshakes per client (the paper's Section 5.5).")
}
