// Session-resumption example: PQ authentication costs nothing the second
// time. A full SPHINCS+ handshake ships a ~36 kB certificate flight and
// spends ~20 ms signing; a PSK-resumed handshake skips the Certificate and
// CertificateVerify entirely, so even the slowest signature algorithm
// becomes irrelevant for reconnecting clients.
package main

import (
	"fmt"
	"log"
	"time"

	"pqtls"
)

func main() {
	fmt.Println("Full vs PSK-resumed handshakes (kyber512 key agreement)")
	fmt.Println()
	fmt.Printf("%-12s %12s %12s %14s %14s\n", "SA", "full", "resumed", "full srv B", "resumed srv B")
	for _, sigName := range []string{"rsa:2048", "dilithium2", "sphincs128"} {
		full, err := pqtls.RunCampaign(pqtls.CampaignOptions{
			KEM: "kyber512", Sig: sigName, Link: pqtls.ScenarioTestbed,
			Buffer: pqtls.BufferImmediate, Samples: 7, Seed: 21,
		})
		if err != nil {
			log.Fatal(err)
		}
		resumed, err := pqtls.RunCampaign(pqtls.CampaignOptions{
			KEM: "kyber512", Sig: sigName, Link: pqtls.ScenarioTestbed,
			Buffer: pqtls.BufferImmediate, Samples: 7, Seed: 21, Resume: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %12s %12s %13dB %13dB\n", sigName,
			full.TotalMedian.Round(10*time.Microsecond),
			resumed.TotalMedian.Round(10*time.Microsecond),
			full.ServerBytes, resumed.ServerBytes)
	}
	fmt.Println()
	fmt.Println("Resumed handshakes carry no certificate: the signature algorithm")
	fmt.Println("no longer matters, and the wire cost collapses to the key agreement.")
}
