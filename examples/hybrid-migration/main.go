// Hybrid-migration example: quantify the paper's core recommendation.
//
// Section 6 concludes that hybrid algorithms (classical + PQ combined so an
// attacker must break both) carry essentially no performance penalty on
// NIST level 1, while on higher levels the classical component becomes the
// bottleneck. This example measures pure-classical, pure-PQ, and hybrid
// suites at each level and prints the overhead of going hybrid.
package main

import (
	"fmt"
	"log"
	"time"

	"pqtls"
)

func measure(kem, sig string) time.Duration {
	r, err := pqtls.RunCampaign(pqtls.CampaignOptions{
		KEM: kem, Sig: sig, Link: pqtls.ScenarioTestbed,
		Buffer: pqtls.BufferImmediate, Samples: 9, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	return r.TotalMedian
}

func main() {
	fmt.Println("Hybrid key agreement overhead (median handshake, rsa:2048 certificates)")
	fmt.Println()
	levels := []struct {
		level                 int
		classical, pq, hybrid string
	}{
		{1, "p256", "kyber512", "p256_kyber512"},
		{3, "p384", "kyber768", "p384_kyber768"},
		{5, "p521", "kyber1024", "p521_kyber1024"},
	}
	fmt.Printf("%-6s %-12s %-12s %-12s %s\n", "level", "classical", "pure PQ", "hybrid", "hybrid vs PQ")
	for _, l := range levels {
		c := measure(l.classical, "rsa:2048")
		p := measure(l.pq, "rsa:2048")
		h := measure(l.hybrid, "rsa:2048")
		overhead := float64(h-p) / float64(p) * 100
		fmt.Printf("L%-5d %-12s %-12s %-12s %+.0f%%\n",
			l.level,
			c.Round(10*time.Microsecond),
			p.Round(10*time.Microsecond),
			h.Round(10*time.Microsecond),
			overhead)
	}
	fmt.Println()
	fmt.Println("Reading: on level 1 the hybrid is nearly free; on levels 3/5 the")
	fmt.Println("classical ECDH becomes the bottleneck and pure PQ pulls ahead —")
	fmt.Println("exactly the pattern in the paper's Table 2a and Figure 4.")
}
