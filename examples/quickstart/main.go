// Quickstart: a complete post-quantum TLS 1.3 handshake over an in-memory
// connection, using a hybrid key agreement (X25519-style classical + Kyber)
// and a Dilithium certificate — the combination the paper recommends
// (Section 6: hybrids cost nothing and hedge both ways).
package main

import (
	"fmt"
	"log"
	"net"

	"pqtls"
)

func main() {
	// 1. Build a tiny PKI: a Dilithium root CA and a leaf certificate.
	root, rootPriv, err := pqtls.SelfSigned("Example Root CA", "dilithium2")
	if err != nil {
		log.Fatal(err)
	}
	scheme, err := pqtls.SignatureByName("dilithium2")
	if err != nil {
		log.Fatal(err)
	}
	leafPub, leafPriv, err := scheme.GenerateKey(nil)
	if err != nil {
		log.Fatal(err)
	}
	leaf, err := pqtls.IssueCertificate(2, "server.example", "dilithium2", leafPub, root, rootPriv)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Configure both endpoints with a hybrid key agreement.
	serverCfg := &pqtls.Config{
		KEMName:    "p256_kyber512",
		SigName:    "dilithium2",
		ServerName: "server.example",
		Chain:      []*pqtls.Certificate{leaf},
		PrivateKey: leafPriv,
		Buffer:     pqtls.BufferImmediate,
	}
	clientCfg := &pqtls.Config{
		KEMName:    "p256_kyber512",
		SigName:    "dilithium2",
		ServerName: "server.example",
		Roots:      pqtls.NewCertPool(root),
	}

	// 3. Handshake over an in-memory pipe.
	cConn, sConn := net.Pipe()
	errCh := make(chan error, 1)
	go func() {
		_, err := pqtls.ServerHandshake(sConn, serverCfg)
		errCh <- err
	}()
	client, err := pqtls.ClientHandshake(cConn, clientCfg)
	if err != nil {
		log.Fatalf("client handshake: %v", err)
	}
	if err := <-errCh; err != nil {
		log.Fatalf("server handshake: %v", err)
	}

	fmt.Println("post-quantum TLS 1.3 handshake complete")
	fmt.Printf("  key agreement:  p256_kyber512 (hybrid, NIST level 1)\n")
	fmt.Printf("  authentication: %s certificate for %q\n",
		client.ServerCert.Algorithm, client.ServerCert.Subject)
	cApp, sApp := client.AppTrafficSecrets()
	fmt.Printf("  client app traffic secret: %x...\n", cApp[:8])
	fmt.Printf("  server app traffic secret: %x...\n", sApp[:8])
}
