// Constrained-IoT example: pick the right PQ suite for an LTE-M device.
//
// Section 5.4 of the paper shows that on low-bandwidth, high-RTT links the
// handshake is dominated by data volume, not CPU: Kyber and Falcon win
// because of their small keys, while Dilithium and SPHINCS+ pay for their
// large signatures with extra round trips. This example measures a few
// candidate suites under the paper's LTE-M emulation (10% loss, 200 ms RTT,
// 1 Mbit/s) and prints a recommendation.
package main

import (
	"fmt"
	"log"
	"time"

	"pqtls"
)

func main() {
	candidates := []struct{ kem, sig string }{
		{"kyber512", "falcon512"},  // small keys and small signatures
		{"kyber512", "dilithium2"}, // larger signatures
		{"hqc128", "falcon512"},    // large KEM keys
		{"x25519", "rsa:2048"},     // today's classical baseline
	}

	fmt.Println("Suite selection for an LTE-M device (10% loss, 200ms RTT, 1 Mbit/s)")
	fmt.Println()
	fmt.Printf("%-28s %12s %12s %10s\n", "suite", "median", "testbed", "wire bytes")

	type row struct {
		name  string
		ltem  time.Duration
		bytes int
	}
	var best row
	for _, c := range candidates {
		ltem, err := pqtls.RunCampaign(pqtls.CampaignOptions{
			KEM: c.kem, Sig: c.sig, Link: pqtls.ScenarioLTEM,
			Buffer: pqtls.BufferImmediate, Samples: 7, Seed: 42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fast, err := pqtls.RunCampaign(pqtls.CampaignOptions{
			KEM: c.kem, Sig: c.sig, Link: pqtls.ScenarioTestbed,
			Buffer: pqtls.BufferImmediate, Samples: 7, Seed: 42,
		})
		if err != nil {
			log.Fatal(err)
		}
		total := ltem.ClientBytes + ltem.ServerBytes
		name := c.kem + " + " + c.sig
		fmt.Printf("%-28s %12s %12s %9dB\n", name,
			ltem.TotalMedian.Round(time.Millisecond),
			fast.TotalMedian.Round(10*time.Microsecond), total)
		if best.name == "" || ltem.TotalMedian < best.ltem {
			best = row{name: name, ltem: ltem.TotalMedian, bytes: total}
		}
	}

	fmt.Println()
	fmt.Printf("recommendation: %s (%v median on LTE-M, %d bytes on the wire)\n",
		best.name, best.ltem.Round(time.Millisecond), best.bytes)
	fmt.Println("note how the testbed ranking (CPU-bound) differs from the LTE-M")
	fmt.Println("ranking (volume-bound) — the paper's Section 5.4 conclusion.")
}
