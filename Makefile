GO ?= go
FUZZTIME ?= 5s
# 5 samples per cell matches the committed results/table4*.txt provenance
# (see EXPERIMENTS.md).
TABLE4FLAGS ?= -samples 5 -timing model

.PHONY: check lint vet build test race fuzz-smoke live-smoke clientpath-smoke saturate-smoke dist-smoke phases-smoke timeline-smoke bench bench-gate table4 clean

# check is the CI entry point: static checks, build, the full test suite,
# the race-enabled suite (exercising the parallel campaign engine), the
# benchmark regression gate (short mode: allocs/op only, since shared
# runners have noisy timing), a short fuzz pass over each wire-parsing
# target, a live loopback smoke run, the sharded-accept saturate smoke, the
# distributed coordinator/worker smoke, the observability smokes (phase
# traces + Prometheus /metrics), and the streaming-telemetry smoke (windowed
# timeline artifacts from a 2-worker dist run, digest-exact vs single-process).
check: lint build test race bench-gate fuzz-smoke live-smoke clientpath-smoke saturate-smoke dist-smoke phases-smoke timeline-smoke

# lint runs the always-available static checks (gofmt, go vet) and, when
# installed, staticcheck. The toolchain image does not bundle staticcheck,
# so its absence is not an error.
lint: vet
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The harness and crypto packages hold the shared state the parallel engine
# touches (registries, credential cache, lazy tables); -race across the tree
# is the guard that keeps them honest.
race:
	$(GO) test -race ./...

# One bounded fuzz run per target; Go requires -fuzz to match a single
# target per invocation, hence the loop.
fuzz-smoke:
	for target in FuzzClientHelloParse FuzzServerHelloParse FuzzRecordDeprotect; do \
		$(GO) test ./internal/tls13 -run '^$$' -fuzz $$target -fuzztime $(FUZZTIME) || exit 1; \
	done

# live-smoke drives the real TLS stack over loopback sockets under the race
# detector: a short pqbench live run for the headline PQ suite, twice, and a
# check that the seeded arrival schedule (the deterministic half of the
# subsystem — measured latencies are not) produces the same digest both
# times. A third run turns on the full precompute subsystem (-pool:
# key-share factory, amortized client caches, signing worker pool) and must
# produce the same digest and zero failures under the race detector.
live-smoke:
	$(GO) build -race -o bin/pqbench-race ./cmd/pqbench
	@d1=$$(bin/pqbench-race live -kem kyber768 -sig dilithium3 -rate 50 -duration 1s | \
		tee /dev/stderr | sed -n 's/.*digest \([0-9a-f]*\).*/\1/p'); \
	d2=$$(bin/pqbench-race live -kem kyber768 -sig dilithium3 -rate 50 -duration 1s | \
		sed -n 's/.*digest \([0-9a-f]*\).*/\1/p'); \
	if [ -z "$$d1" ] || [ "$$d1" != "$$d2" ]; then \
		echo "live-smoke: schedule digest not reproducible: '$$d1' vs '$$d2'"; exit 1; fi; \
	d3=$$(bin/pqbench-race live -kem kyber768 -sig dilithium3 -rate 50 -duration 1s -pool | \
		tee /dev/stderr | sed -n 's/.*digest \([0-9a-f]*\).*/\1/p'); \
	if [ "$$d1" != "$$d3" ]; then \
		echo "live-smoke: -pool changed the schedule digest: '$$d1' vs '$$d3'"; exit 1; fi; \
	echo "live-smoke OK: schedule digest $$d1 reproducible across runs (incl. -pool)"

# clientpath-smoke drives the client-side fast path end to end under the
# race detector: a loopback run with the batching verification pool and
# batched server encapsulation on (-verify-workers/-encap-batch) must
# produce the same seeded schedule digest as an unpooled run, actually
# route checks through the verify pool, and complete without failures.
clientpath-smoke:
	$(GO) build -race -o bin/pqbench-race ./cmd/pqbench
	@d1=$$(bin/pqbench-race live -kem kyber768 -sig dilithium3 -rate 50 -duration 1s | \
		sed -n 's/.*digest \([0-9a-f]*\).*/\1/p'); \
	out=$$(bin/pqbench-race live -kem kyber768 -sig dilithium3 -rate 50 -duration 1s \
		-verify-workers 2 -encap-batch 16 | tee /dev/stderr); \
	d2=$$(echo "$$out" | sed -n 's/.*digest \([0-9a-f]*\).*/\1/p'); \
	if [ -z "$$d1" ] || [ "$$d1" != "$$d2" ]; then \
		echo "clientpath-smoke: batched run changed the schedule digest: '$$d1' vs '$$d2'"; exit 1; fi; \
	if ! echo "$$out" | grep -q '^verify pool: 2 workers, [1-9]'; then \
		echo "clientpath-smoke: verify pool saw no traffic"; exit 1; fi; \
	if ! echo "$$out" | grep -q 'failed 0,'; then \
		echo "clientpath-smoke: batched run had handshake failures"; exit 1; fi; \
	echo "clientpath-smoke OK: schedule digest $$d1 identical with verify/encap batching on"

# saturate-smoke runs a short `pqbench saturate` ladder (sharded accept,
# split-schedule dispatch, resumption on the shared ticket store) under the
# race detector, twice, and checks the sweep digest — the fingerprint of
# every rung's seeded arrival plan — is identical both times. Achieved
# rates are the host's; the offered plans must not be.
saturate-smoke:
	$(GO) build -race -o bin/pqbench-race ./cmd/pqbench
	@d1=$$(bin/pqbench-race saturate -rate 40 -duration 1s -rungs 2 -shards 1,2 -resume | \
		tee /dev/stderr | sed -n 's/.*sweep digest \([0-9a-f]*\).*/\1/p'); \
	d2=$$(bin/pqbench-race saturate -rate 40 -duration 1s -rungs 2 -shards 1,2 -resume | \
		sed -n 's/.*sweep digest \([0-9a-f]*\).*/\1/p'); \
	if [ -z "$$d1" ] || [ "$$d1" != "$$d2" ]; then \
		echo "saturate-smoke: sweep digest not reproducible: '$$d1' vs '$$d2'"; exit 1; fi; \
	echo "saturate-smoke OK: sweep digest $$d1 reproducible across runs"

# dist-smoke exercises the distributed load-generation subsystem end to end
# under the race detector, in Simulate mode (where the merged Result is a
# pure function of the arrival plan, so exact equality is checkable). Leg 1
# splits one plan across two self-spawned dist-worker processes; -verify
# fails unless the merged digest, counters, and p50/p95/p99 equal a
# single-process run of the identical plan. Leg 2 SIGKILLs one worker
# mid-run: the coordinator must detect the death by heartbeat timeout,
# reassign the orphaned shard to the survivor, and still verify exactly.
dist-smoke:
	$(GO) build -race -o bin/pqbench-race ./cmd/pqbench
	bin/pqbench-race dist-coordinator -simulate -verify -workers 2 -workers-local 2 \
		-rate 80 -duration 1s -start-delay 50ms -heartbeat-timeout 2s
	bin/pqbench-race dist-coordinator -simulate -verify -workers 2 -workers-local 2 \
		-rate 80 -duration 1s -start-delay 50ms \
		-heartbeat-timeout 400ms -kill-worker-after 500ms
	@echo "dist-smoke OK: distributed run reproduces the single-process digest (incl. kill/reassign leg)"

# phases-smoke exercises the observability subsystem end to end: `pqbench
# phases` for a classical and a PQ cell (JSONL schema self-check, flight-wait
# visible), then a real pqtls-server scraped over /metrics and /healthz.
phases-smoke:
	sh scripts/phases_smoke.sh

# timeline-smoke exercises the streaming-telemetry subsystem end to end: a
# 2-worker distributed Simulate run under the race detector with -window
# telemetry on, where -verify asserts the merged fleet timeline is
# digest-exact vs the single-process run, plus schema checks on the written
# .jsonl/.csv artifacts and a round-trip through `pqbench timeline`.
timeline-smoke:
	sh scripts/timeline_smoke.sh

# bench refreshes the committed microbenchmark baseline (kernel ns/op +
# allocs/op + live loopback handshakes/sec) and runs the go-test-native
# kernel benchmarks once as a smoke pass. Commit the regenerated JSON when
# the numbers move for a good reason; scripts/bench_gate.sh fails CI when
# they move for a bad one.
bench:
	$(GO) build -o bin/pqbench ./cmd/pqbench
	bin/pqbench microbench -out BENCH_10.json
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-gate compares a fresh short microbench run against the newest
# committed BENCH_*.json (allocs-only in short mode). Run without -short
# locally for the full >10% ns/op gate.
bench-gate:
	sh scripts/bench_gate.sh -short

# table4 regenerates the constrained-network tables (Table 4a/4b) with the
# parallel engine, verifies worker-count determinism (the -workers 8 output
# must be byte-identical to -workers 1), and shows what changed vs. the
# committed results. The loss-monotonicity gate runs inside pqbench.
table4:
	$(GO) build -o bin/pqbench ./cmd/pqbench
	bin/pqbench all-kem-scenarios $(TABLE4FLAGS) -workers 8 > results/table4a.txt
	bin/pqbench all-sig-scenarios $(TABLE4FLAGS) -workers 8 > results/table4b.txt
	bin/pqbench all-kem-scenarios $(TABLE4FLAGS) -workers 1 | cmp - results/table4a.txt
	bin/pqbench all-sig-scenarios $(TABLE4FLAGS) -workers 1 | cmp - results/table4b.txt
	git diff --stat -- results/table4a.txt results/table4b.txt

clean:
	$(GO) clean ./...
	rm -f *.pcap
	rm -rf bin
