GO ?= go
FUZZTIME ?= 5s

.PHONY: check vet build test race fuzz-smoke bench clean

# check is the CI entry point: static checks, build, the full test suite,
# the race-enabled suite (exercising the parallel campaign engine), and a
# short fuzz pass over each wire-parsing target.
check: vet build test race fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The harness and crypto packages hold the shared state the parallel engine
# touches (registries, credential cache, lazy tables); -race across the tree
# is the guard that keeps them honest.
race:
	$(GO) test -race ./...

# One bounded fuzz run per target; Go requires -fuzz to match a single
# target per invocation, hence the loop.
fuzz-smoke:
	for target in FuzzClientHelloParse FuzzServerHelloParse FuzzRecordDeprotect; do \
		$(GO) test ./internal/tls13 -run '^$$' -fuzz $$target -fuzztime $(FUZZTIME) || exit 1; \
	done

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

clean:
	$(GO) clean ./...
	rm -f *.pcap
