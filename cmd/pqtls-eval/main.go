// Command pqtls-eval implements the artifact's offline-evaluation workflow:
// it reads libpcap captures (as produced by `pqbench capture` or any
// tcpdump of a pqtls handshake on the simulated addressing scheme),
// reconstructs the TCP streams, and extracts the paper's black-box
// handshake phases without any key material — exactly what the paper's
// timestamper node does.
//
//	pqtls-eval handshake.pcap [more.pcap ...]
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"pqtls/internal/netsim"
	"pqtls/internal/nettap"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: pqtls-eval <capture.pcap> [...]")
		os.Exit(2)
	}
	fmt.Println("file,partA_ms,partB_ms,partAll_ms,packets")
	for _, path := range os.Args[1:] {
		if err := evaluate(path); err != nil {
			log.Fatalf("%s: %v", path, err)
		}
	}
}

func evaluate(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	frames, times, err := nettap.ReadPcap(f)
	if err != nil {
		return err
	}
	ts := nettap.NewTimestamper()
	for i, frame := range frames {
		ts.Tap(directionOf(frame), times[i], frame)
	}
	phases, ok := ts.Phases()
	if !ok {
		return fmt.Errorf("capture does not contain a complete handshake (%d decode errors)", ts.DecodeErrors())
	}
	fmt.Printf("%s,%.4f,%.4f,%.4f,%d\n", path,
		msf(phases.PartA), msf(phases.PartB), msf(phases.Total()), len(frames))
	return nil
}

// directionOf classifies a frame by its source IP (10.0.0.1 = client).
func directionOf(frame []byte) netsim.Direction {
	var eth nettap.Ethernet
	var ip nettap.IPv4
	if eth.DecodeFromBytes(frame) == nil && ip.DecodeFromBytes(eth.LayerPayload()) == nil {
		if ip.SrcIP == [4]byte{10, 0, 0, 2} {
			return netsim.ServerToClient
		}
	}
	return netsim.ClientToServer
}

func msf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
