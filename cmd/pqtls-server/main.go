// Command pqtls-server is the reproduction's analog of `openssl s_server`:
// it answers PQ TLS 1.3 handshakes over real TCP sockets, built on the
// internal/live runtime — transient Accept errors retry with backoff
// instead of killing the process, every connection carries a handshake
// deadline so a stalled peer cannot leak a goroutine, concurrency is
// bounded, session tickets are issued from a store shared across
// connections, and SIGINT drains gracefully. The matching client is
// cmd/pqtls-client. The root certificate is written to a file the client
// loads.
//
//	pqtls-server -listen :8443 -kem kyber512 -sig dilithium2 -root root.cert
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pqtls"
	"pqtls/internal/live"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8443", "listen address")
	kemName := flag.String("kem", "x25519", "key agreement (see pqbench list)")
	sigName := flag.String("sig", "rsa:2048", "certificate signature algorithm")
	rootOut := flag.String("root", "root.cert", "file to write the root certificate to")
	buffer := flag.String("buffer", "immediate", "flight buffering: default|immediate")
	metrics := flag.String("metrics", "", "serve Prometheus /metrics + /healthz on this address (e.g. 127.0.0.1:9090; empty = off)")
	maxConns := flag.Int("max-conns", 256, "concurrent handshake limit")
	hsTimeout := flag.Duration("timeout", 10*time.Second, "per-connection handshake deadline")
	grace := flag.Duration("grace", 5*time.Second, "drain grace period on shutdown")
	flag.Parse()

	root, rootPriv, err := pqtls.SelfSigned("PQTLS Root CA", *sigName)
	if err != nil {
		log.Fatal(err)
	}
	scheme, err := pqtls.SignatureByName(*sigName)
	if err != nil {
		log.Fatal(err)
	}
	leafPub, leafPriv, err := scheme.GenerateKey(nil)
	if err != nil {
		log.Fatal(err)
	}
	leaf, err := pqtls.IssueCertificate(2, "server.example", *sigName, leafPub, root, rootPriv)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*rootOut, root.Marshal(), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("root certificate written to %s", *rootOut)

	policy := pqtls.BufferImmediate
	if *buffer == "default" {
		policy = pqtls.BufferDefault
	}
	cfg := &pqtls.Config{
		KEMName: *kemName, SigName: *sigName, ServerName: "server.example",
		Chain: []*pqtls.Certificate{leaf}, PrivateKey: leafPriv, Buffer: policy,
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := live.Serve(ln, live.Options{
		Config:           cfg,
		MaxConns:         *maxConns,
		HandshakeTimeout: *hsTimeout,
		IssueTickets:     true,
		Logf:             log.Printf,
		MetricsAddr:      *metrics,
		PhaseMetrics:     *metrics != "",
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (kem=%s sig=%s, max %d conns, %v handshake deadline)",
		ln.Addr(), *kemName, *sigName, *maxConns, *hsTimeout)
	if a := srv.MetricsAddr(); a != nil {
		log.Printf("metrics on http://%s/metrics, health on /healthz", a)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("shutting down: draining for up to %v", *grace)
	if err := srv.Shutdown(*grace); err != nil {
		log.Print(err)
	}
	c := srv.Counters()
	ts := srv.TicketStats()
	log.Printf("served %d connections: %d completed (%d resumed), %d failed; tickets issued %d, redeemed %d, rejected %d",
		c.Accepted, c.Completed, c.Resumed, c.FailedTotal(), ts.Issued, ts.Redeemed, ts.Rejected)
	for class, n := range c.Failed {
		log.Printf("failures[%s]: %d", class, n)
	}
}
