// Command pqtls-server is the reproduction's analog of `openssl s_server`:
// it answers PQ TLS 1.3 handshakes over real TCP sockets. The matching
// client is cmd/pqtls-client. The root certificate is written to a file the
// client loads.
//
//	pqtls-server -listen :8443 -kem kyber512 -sig dilithium2 -root root.cert
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"time"

	"pqtls"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8443", "listen address")
	kemName := flag.String("kem", "x25519", "key agreement (see pqbench list)")
	sigName := flag.String("sig", "rsa:2048", "certificate signature algorithm")
	rootOut := flag.String("root", "root.cert", "file to write the root certificate to")
	buffer := flag.String("buffer", "immediate", "flight buffering: default|immediate")
	flag.Parse()

	root, rootPriv, err := pqtls.SelfSigned("PQTLS Root CA", *sigName)
	if err != nil {
		log.Fatal(err)
	}
	scheme, err := pqtls.SignatureByName(*sigName)
	if err != nil {
		log.Fatal(err)
	}
	leafPub, leafPriv, err := scheme.GenerateKey(nil)
	if err != nil {
		log.Fatal(err)
	}
	leaf, err := pqtls.IssueCertificate(2, "server.example", *sigName, leafPub, root, rootPriv)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*rootOut, root.Marshal(), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("root certificate written to %s", *rootOut)

	policy := pqtls.BufferImmediate
	if *buffer == "default" {
		policy = pqtls.BufferDefault
	}
	cfg := &pqtls.Config{
		KEMName: *kemName, SigName: *sigName, ServerName: "server.example",
		Chain: []*pqtls.Certificate{leaf}, PrivateKey: leafPriv, Buffer: policy,
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s (kem=%s sig=%s)", *listen, *kemName, *sigName)
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		go func(conn net.Conn) {
			defer conn.Close()
			start := time.Now()
			if _, err := pqtls.ServerHandshake(conn, cfg); err != nil {
				log.Printf("%s: handshake failed: %v", conn.RemoteAddr(), err)
				return
			}
			log.Printf("%s: handshake complete in %v", conn.RemoteAddr(), time.Since(start))
		}(conn)
	}
}
