package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"time"

	"pqtls/internal/harness"
	"pqtls/internal/live"
	"pqtls/internal/loadgen"
	"pqtls/internal/obs"
	"pqtls/internal/tls13"
)

// runLive is the `pqbench live` subcommand: it starts the internal/live
// server runtime on a loopback listener, drives it with internal/loadgen's
// open-loop schedule, and renders the measured cell next to the cost-model
// prediction for the same (KA, SA, buffer-policy, resumption) grid point.
// Unlike every other subcommand, the latencies here are real wall-clock
// measurements of this host — only the arrival schedule is deterministic.
func runLive(args []string) error {
	fs := flag.NewFlagSet("live", flag.ExitOnError)
	kemName := fs.String("kem", "kyber768", "key agreement (see pqbench list)")
	sigName := fs.String("sig", "dilithium3", "certificate signature algorithm")
	buffer := fs.String("buffer", "immediate", "server flight buffering: default|immediate")
	resume := fs.Bool("resume", false, "measure PSK-resumed handshakes (one full handshake primes the ticket)")
	rate := fs.Float64("rate", 200, "offered load in handshakes/second (open loop)")
	duration := fs.Duration("duration", 2*time.Second, "schedule span")
	warmup := fs.Duration("warmup", 0, "discard handshakes scheduled before this offset (default duration/10)")
	dist := fs.String("dist", "exp", "inter-arrival distribution: exp|uniform")
	seed := fs.Int64("seed", 1, "arrival-schedule seed")
	conns := fs.Int("conns", 128, "max concurrent handshakes (client pool and server limiter)")
	hsTimeout := fs.Duration("timeout", 10*time.Second, "per-connection handshake deadline")
	samples := fs.Int("samples", 5, "modeled-campaign samples for the prediction column")
	metrics := fs.String("metrics", "", "serve Prometheus /metrics + /healthz on this address for the run (e.g. 127.0.0.1:9090)")
	pool := fs.Bool("pool", false, "enable the precompute subsystem end to end: key-share factory on the client, amortized chain/verifier caches, signing worker pool on the server")
	signWorkers := fs.Int("sign-workers", 0, "server signing worker pool size (0 = sign inline; -pool defaults this to 2)")
	verifyWorkers := fs.Int("verify-workers", 0, "client verification worker pool size: batch in-flight CertificateVerify checks through one multi-sponge pass (0 = verify inline; -pool defaults this to 2)")
	encapBatch := fs.Int("encap-batch", 0, "server encapsulation batch size: collect concurrent KEM encapsulations into one multi-sponge pass (0 = encapsulate inline; -pool defaults this to 16)")
	amortize := fs.Bool("amortize", false, "share chain-verification and verifier-context caches across client connections (-pool implies)")
	jsonOut := fs.Bool("json", false, "emit the run's Result on stdout in the canonical JSON encoding (the same layout the distributed protocol pins); human-readable chatter moves to stderr")
	window := fs.Duration("window", 0, "windowed telemetry interval: per-window snapshots, a live progress line, and the timeline in -json output (0 = off)")
	timelinePath := fs.String("timeline", "", "write the run's timeline artifacts to this path base (.jsonl + .csv; implies -window 1s if unset)")
	fs.Parse(args)
	*window = resolveWindow(*window, *timelinePath)
	if *pool {
		if *signWorkers == 0 {
			*signWorkers = 2
		}
		if *verifyWorkers == 0 {
			*verifyWorkers = 2
		}
		if *encapBatch == 0 {
			*encapBatch = 16
		}
		*amortize = true
	}

	policy := tls13.BufferImmediate
	if *buffer == "default" {
		policy = tls13.BufferDefault
	}
	distVal, err := loadgen.ParseDist(*dist)
	if err != nil {
		return err
	}
	if *warmup <= 0 {
		*warmup = *duration / 10
	}

	// Server identity: same credential construction the campaigns use.
	creds, err := harness.CredentialsFor(*sigName, 1)
	if err != nil {
		return err
	}
	srvCfg := &tls13.Config{
		KEMName: *kemName, SigName: *sigName, ServerName: "server.example",
		Chain: creds.Chain, PrivateKey: creds.Priv, Buffer: policy,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv, err := live.Serve(ln, live.Options{
		Config:           srvCfg,
		MaxConns:         *conns,
		HandshakeTimeout: *hsTimeout,
		IssueTickets:     *resume,
		MetricsAddr:      *metrics,
		PhaseMetrics:     *metrics != "",
		SignWorkers:      *signWorkers,
		EncapBatch:       *encapBatch,
	})
	if err != nil {
		return err
	}
	var keyPool *harness.KeyPool
	if *pool {
		keyPool = harness.NewKeyPool()
		err := keyPool.StartFactory(harness.FactoryOptions{
			Suites: []string{*kemName}, Target: 128, LowWater: 32, Batch: 32,
		})
		if err != nil {
			return err
		}
		defer keyPool.StopFactory()
	}
	// In -json mode stdout carries exactly one JSON document; everything
	// human-readable moves to stderr.
	out := io.Writer(os.Stdout)
	if *jsonOut {
		out = os.Stderr
	}
	if a := srv.MetricsAddr(); a != nil {
		fmt.Fprintf(out, "metrics: http://%s/metrics (healthz on the same listener)\n", a)
	}

	sched := loadgen.NewSchedule(*seed, distVal, *rate, *duration)
	fmt.Fprintf(out, "pqbench live: %s + %s over loopback (%s buffering, %s arrivals at %g/s, seed %d)\n",
		*kemName, *sigName, *buffer, distVal, *rate, *seed)
	fmt.Fprintf(out, "schedule: %d arrivals over %v, digest %s (reproducible; latencies below are not)\n",
		len(sched.Offsets), *duration, sched.Digest())

	runOpts := loadgen.Options{
		Addr:             srv.Addr().String(),
		Config:           &tls13.Config{KEMName: *kemName, SigName: *sigName, ServerName: "server.example", Roots: creds.Roots},
		Schedule:         sched,
		Warmup:           *warmup,
		MaxConcurrent:    *conns,
		HandshakeTimeout: *hsTimeout,
		Resume:           *resume,
		Amortize:         *amortize,
	}
	if keyPool != nil {
		runOpts.KeyShares = keyPool
	}
	var verifyPool *loadgen.VerifyPool
	if *verifyWorkers > 0 {
		verifyPool = loadgen.NewVerifyPool(*verifyWorkers, 16, 0)
		defer verifyPool.Close()
		runOpts.VerifyPool = verifyPool
	}
	var tl *obs.Timeline
	stopProgress := func() {}
	if *window > 0 {
		// The CLI owns the timeline so the progress printer can watch it
		// while the dispatch loop records into it.
		tl = obs.NewTimeline(*window)
		runOpts.Timeline = tl
		stopProgress = startTimelineProgress("live", *window, func() *obs.Timeline { return tl })
	}
	res, err := loadgen.Run(runOpts)
	stopProgress()
	if err != nil {
		srv.Shutdown(time.Second)
		return err
	}
	if err := srv.Shutdown(5 * time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "pqbench:", err)
	}
	if *timelinePath != "" {
		if err := writeTimelineArtifacts(res.Timeline, *timelinePath); err != nil {
			return err
		}
	}

	if *jsonOut {
		// One machine-readable document: the grid coordinate, the schedule
		// fingerprint, and the Result in its canonical JSON shape.
		doc := struct {
			KEM            string          `json:"kem"`
			Sig            string          `json:"sig"`
			Buffer         string          `json:"buffer"`
			Resumed        bool            `json:"resumed"`
			Seed           int64           `json:"seed"`
			ScheduleDigest string          `json:"schedule_digest"`
			ResultDigest   string          `json:"result_digest"`
			Result         *loadgen.Result `json:"result"`
		}{*kemName, *sigName, *buffer, *resume, *seed, sched.Digest(), res.Digest(), res}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}

	// Modeled prediction for the same grid cell (deterministic).
	campaign, err := harness.RunCampaign(harness.CampaignOptions{
		KEM: *kemName, Sig: *sigName, Link: harness.ScenarioTestbed,
		Buffer: policy, Samples: *samples, Resume: *resume,
		Timing: harness.TimingModel,
	})
	if err != nil {
		return err
	}

	row := harness.LiveRow{
		KEM: *kemName, Sig: *sigName, Resumed: *resume,
		HSRate:    res.Rate(*warmup),
		P50:       res.Hist.Quantile(0.50),
		P95:       res.Hist.Quantile(0.95),
		P99:       res.Hist.Quantile(0.99),
		Completed: res.Completed,
		Failed:    res.Failed,
		Modeled:   campaign.TotalMedian,
	}
	if err := harness.RenderLive(os.Stdout, []harness.LiveRow{row}); err != nil {
		return err
	}

	fmt.Printf("client: offered %d, completed %d (%d warmup discarded), failed %d, max start lag %v\n",
		res.Offered, res.Completed, res.Warmup, res.Failed, res.MaxLag.Round(time.Microsecond))
	if len(res.Errors) > 0 {
		classes := make([]string, 0, len(res.Errors))
		for c := range res.Errors {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			fmt.Printf("client error[%s]: %d\n", c, res.Errors[c])
		}
	}
	c := srv.Counters()
	fmt.Printf("server: accepted %d, completed %d (%d resumed), failed %d, accept retries %d\n",
		c.Accepted, c.Completed, c.Resumed, c.FailedTotal(), c.AcceptRetries)
	if *signWorkers > 0 {
		sp := srv.SignPoolStats()
		fmt.Printf("sign pool: %d workers, %d signatures, %d errors\n", *signWorkers, sp.Signs, sp.Errors)
	}
	if *encapBatch > 0 {
		ep := srv.EncapPoolStats()
		fmt.Printf("encap pool: batch %d, %d encapsulations (%d batched in %d calls), %d errors\n",
			*encapBatch, ep.Encaps, ep.Batched, ep.Batches, ep.Errors)
	}
	if verifyPool != nil {
		vp := verifyPool.Stats()
		fmt.Printf("verify pool: %d workers, %d verifications (%d batched in %d calls)\n",
			*verifyWorkers, vp.Verifies, vp.Batched, vp.Batches)
	}
	if keyPool != nil {
		st := keyPool.FactoryStats()
		fmt.Printf("key-share factory: %d generated in %d batches, %d pool hits, %d misses\n",
			st.Generated, st.Batches, st.Hits, st.Misses)
	}
	if *resume {
		ts := srv.TicketStats()
		fmt.Printf("tickets: issued %d, redeemed %d, rejected %d\n", ts.Issued, ts.Redeemed, ts.Rejected)
	}
	return nil
}
