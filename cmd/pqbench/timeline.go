package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"text/tabwriter"
	"time"

	"pqtls/internal/obs"
)

// Windowed-telemetry plumbing shared by the load-driving subcommands: live,
// saturate, and dist-coordinator all accept -window (enable per-window
// telemetry and a live progress line at that cadence) and -timeline (write
// the run's timeline as digest-checkable results/ artifacts), and the
// `pqbench timeline` subcommand renders those artifacts back into a table.

// resolveWindow applies the flag coupling: -timeline implies windowed
// telemetry, defaulting the interval to one second when -window was not
// given explicitly.
func resolveWindow(window time.Duration, timelinePath string) time.Duration {
	if window <= 0 && timelinePath != "" {
		return time.Second
	}
	return window
}

// startTimelineProgress prints one fleet-rollup line per window interval to
// stderr while a run is in flight: cumulative counters, derived inflight,
// and the completion rate over the last window. src is polled each tick and
// may return nil (no telemetry yet — e.g. no dist progress frame has
// arrived). The returned stop function halts the ticker and waits for the
// printer goroutine to exit.
func startTimelineProgress(label string, interval time.Duration, src func() *obs.Timeline) (stop func()) {
	if interval <= 0 || src == nil {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(finished)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		var prev obs.Window
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				tl := src()
				if tl == nil {
					continue
				}
				tot := tl.Totals()
				rate := float64(tot.Completed-prev.Completed) / interval.Seconds()
				inflight := int64(tot.Started) - int64(tot.Completed) - int64(tot.Failed)
				fmt.Fprintf(os.Stderr, "%s t=%5.1fs started %d completed %d failed %d inflight %d (%.0f hs/s)\n",
					label, time.Since(start).Seconds(), tot.Started, tot.Completed, tot.Failed, inflight, rate)
				prev = tot
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// writeTimelineArtifacts writes base.jsonl (digest-checkable, appendable)
// and base.csv (TimelineCSVHeader schema) for the run's timeline, creating
// the parent directory as needed. Paths are announced on stderr so stdout
// stays machine-readable where a subcommand promises that.
func writeTimelineArtifacts(tl *obs.Timeline, base string) error {
	if tl == nil {
		return errors.New("timeline: run produced no windowed telemetry (is -window set?)")
	}
	if dir := filepath.Dir(base); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	write := func(path string, emit func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(base+".jsonl", tl.WriteJSONL); err != nil {
		return err
	}
	if err := write(base+".csv", tl.WriteCSV); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "timeline: wrote %s.jsonl and %s.csv (digest %s)\n", base, base, tl.Digest())
	return nil
}

// renderTimeline prints the per-window table plus the totals row: the human
// view of what the CSV artifact holds, with the digest for cross-checking
// against other runs.
func renderTimeline(w io.Writer, tl *obs.Timeline) error {
	wins := tl.Windows()
	sec := tl.Interval().Seconds()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "window\tt(ms)\tstarted\tcompleted\tfailed\tresumed\twarmup\tinflight\ths/s\tp50(ms)\tp95(ms)\t")
	var started, completed, failed uint64
	for i := range wins {
		win := &wins[i]
		started += win.Started
		completed += win.Completed
		failed += win.Failed
		inflight := int64(started) - int64(completed) - int64(failed)
		fmt.Fprintf(tw, "%d\t%.0f\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f\t%s\t%s\t\n",
			win.Index, float64(win.Index)*sec*1000,
			win.Started, win.Completed, win.Failed, win.Resumed, win.Warmup,
			inflight,
			float64(win.Completed)/sec,
			ms(win.Hist.Quantile(0.50)), ms(win.Hist.Quantile(0.95)))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	tot := tl.Totals()
	fmt.Fprintf(w, "totals: %d windows at %v, started %d, completed %d (%d warmup, %d resumed), failed %d\n",
		len(wins), tl.Interval(), tot.Started, tot.Completed, tot.Warmup, tot.Resumed, tot.Failed)
	fmt.Fprintf(w, "p50 %sms p95 %sms (post-warmup), digest %s\n",
		ms(tot.Hist.Quantile(0.50)), ms(tot.Hist.Quantile(0.95)), tl.Digest())
	return nil
}

// runTimeline is the `pqbench timeline` subcommand: it loads a timeline
// JSONL artifact (verifying schema and digest), renders the per-window
// table, and optionally re-emits the CSV form.
func runTimeline(args []string) error {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	csvPath := fs.String("csv", "", "also write the timeline as CSV to this file")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return errors.New("timeline: usage: pqbench timeline [-csv out.csv] <timeline.jsonl>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	tl, err := obs.ReadTimelineJSONL(f)
	if err != nil {
		return err
	}
	if err := renderTimeline(os.Stdout, tl); err != nil {
		return err
	}
	if *csvPath != "" {
		out, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		if err := tl.WriteCSV(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "timeline: CSV written to %s\n", *csvPath)
	}
	return nil
}
