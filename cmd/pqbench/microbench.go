package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"pqtls"
	"pqtls/internal/crypto/gf2x"
	"pqtls/internal/crypto/mldsa"
	"pqtls/internal/crypto/mlkem"
	"pqtls/internal/crypto/sha3"
	"pqtls/internal/crypto/sphincs"
	"pqtls/internal/harness"
	"pqtls/internal/live"
	"pqtls/internal/loadgen"
	"pqtls/internal/obs"
	"pqtls/internal/sig"
	"pqtls/internal/tls13"
)

// benchSchema versions the BENCH_*.json layout so the gate can refuse to
// compare incompatible files.
const benchSchema = "pqbench-microbench/v1"

// benchResult is one kernel measurement in BENCH_*.json.
type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// liveResult is the end-to-end loopback measurement in BENCH_*.json. It is
// informational (wall-clock, host-dependent): the regression gate never
// fails on it.
type liveResult struct {
	HandshakesPerSec float64 `json:"handshakes_per_sec"`
	P50Ms            float64 `json:"p50_ms"`
	P95Ms            float64 `json:"p95_ms"`
	Completed        int     `json:"completed"`
	Failed           int     `json:"failed"`
}

// benchFile is the full BENCH_*.json document.
type benchFile struct {
	Schema     string                 `json:"schema"`
	Go         string                 `json:"go"`
	Short      bool                   `json:"short"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
	Live       map[string]liveResult  `json:"live,omitempty"`
}

type namedBench struct {
	name string
	fn   func(b *testing.B)
}

// kernelBenchmarks is the microbenchmark inventory: the kernels the
// paper's white-box profile (Table 3) identifies as handshake-dominant,
// plus one sans-IO handshake per headline suite. The same inventory backs
// the `go test -bench` benchmarks in kernels_bench_test.go.
func kernelBenchmarks() []namedBench {
	var out []namedBench
	add := func(name string, fn func(b *testing.B)) {
		out = append(out, namedBench{name: name, fn: fn})
	}

	add("sha3/sum256-block", func(b *testing.B) {
		buf := make([]byte, 136)
		for i := 0; i < b.N; i++ {
			_ = sha3.Sum256(buf)
		}
	})
	add("sha3/shake256into-64", func(b *testing.B) {
		in := make([]byte, 64)
		dst := make([]byte, 64)
		for i := 0; i < b.N; i++ {
			sha3.ShakeSum256Into(dst, in)
		}
	})
	add("sha3/shake128-batch16x34", func(b *testing.B) {
		// One op = 16 XOF-seed-shaped messages (Kyber/Dilithium matrix
		// expansion inputs) squeezed for a full rate block each; divide
		// ns/op by 16 for the per-message cost the sequential
		// shake256into-style kernels report.
		msgs := make([][]byte, 16)
		dsts := make([][]byte, 16)
		for j := range msgs {
			msgs[j] = make([]byte, 34)
			msgs[j][0] = byte(j)
			dsts[j] = make([]byte, 168)
		}
		for i := 0; i < b.N; i++ {
			sha3.ShakeSum128Batch(dsts, msgs)
		}
	})

	kem := func(p *mlkem.Params) {
		drbg := benchStream("microbench/" + p.Name)
		add(p.Name+"/keygen", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := p.GenerateKey(drbg); err != nil {
					b.Fatal(err)
				}
			}
		})
		pk, sk, err := p.GenerateKey(drbg)
		if err != nil {
			panic(err)
		}
		add(p.Name+"/encap", func(b *testing.B) {
			// The allocation-free path the zero-alloc handshake rides; gated
			// at exactly 0 allocs/op.
			ct := make([]byte, p.CiphertextSize())
			ss := make([]byte, p.SharedSecretSize())
			for i := 0; i < b.N; i++ {
				if err := p.EncapsulateInto(drbg, pk, ct, ss); err != nil {
					b.Fatal(err)
				}
			}
		})
		ct, _, err := p.Encapsulate(drbg, pk)
		if err != nil {
			panic(err)
		}
		add(p.Name+"/decap", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Decapsulate(sk, ct); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	kem(mlkem.Kyber512)
	kem(mlkem.Kyber768)
	add("kyber768/keygen-batch16", func(b *testing.B) {
		// One op = 16 keypairs through the batched path the key-share
		// factory uses; divide by 16 for the per-key cost next to
		// kyber768/keygen.
		drbg := benchStream("microbench/kyber768-batch")
		for i := 0; i < b.N; i++ {
			if _, _, err := mlkem.Kyber768.GenerateKeyBatch(drbg, 16); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("kyber768/encap-batch16", func(b *testing.B) {
		// One op = 16 encapsulations through the multi-sponge batched path
		// the encap pool uses; divide by 16 for the per-share cost next to
		// kyber768/encap.
		drbg := benchStream("microbench/kyber768-encap-batch")
		pk, _, err := mlkem.Kyber768.GenerateKey(drbg)
		if err != nil {
			b.Fatal(err)
		}
		pks := make([][]byte, 16)
		for j := range pks {
			pks[j] = pk
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := mlkem.Kyber768.EncapBatch(drbg, pks); err != nil {
				b.Fatal(err)
			}
		}
	})

	msg := []byte("the performance of post-quantum tls 1.3")
	{
		p := mldsa.Dilithium3
		drbg := benchStream("microbench/dilithium3")
		pk, sk, err := p.GenerateKey(drbg)
		if err != nil {
			panic(err)
		}
		sig, err := p.Sign(sk, msg)
		if err != nil {
			panic(err)
		}
		add("dilithium3/sign", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Sign(sk, msg); err != nil {
					b.Fatal(err)
				}
			}
		})
		add("dilithium3/verify", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !p.Verify(pk, msg, sig) {
					b.Fatal("verify failed")
				}
			}
		})
		signKey, err := p.NewSigningKey(sk)
		if err != nil {
			panic(err)
		}
		verifyKey, err := p.NewVerifyKey(pk)
		if err != nil {
			panic(err)
		}
		add("dilithium3/sign-cached", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := signKey.Sign(msg); err != nil {
					b.Fatal(err)
				}
			}
		})
		add("dilithium3/verify-cached", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !verifyKey.Verify(msg, sig) {
					b.Fatal("verify failed")
				}
			}
		})
		add("dilithium3/verify-batch16", func(b *testing.B) {
			// One op = 16 verifications through the interleaved multi-sponge
			// batch pass the verify pool uses; divide by 16 for the per-check
			// cost next to dilithium3/verify-cached.
			msgs := make([][]byte, 16)
			sigs := make([][]byte, 16)
			for j := range msgs {
				msgs[j], sigs[j] = msg, sig
			}
			for i := 0; i < b.N; i++ {
				for _, ok := range verifyKey.VerifyBatch(msgs, sigs) {
					if !ok {
						b.Fatal("verify failed")
					}
				}
			}
		})
	}
	{
		p := sphincs.SPHINCS128f
		drbg := benchStream("microbench/sphincs128f")
		pk, sk, err := p.GenerateKey(drbg)
		if err != nil {
			panic(err)
		}
		sig, err := p.Sign(sk, msg)
		if err != nil {
			panic(err)
		}
		add("sphincs128f/sign", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Sign(sk, msg); err != nil {
					b.Fatal(err)
				}
			}
		})
		add("sphincs128f/verify", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !p.Verify(pk, msg, sig) {
					b.Fatal("verify failed")
				}
			}
		})
	}
	{
		// HQC-128 shapes: r = 17669, dense * weight-75 sparse.
		const r, w = 17669, 75
		drbg := benchStream("microbench/gf2x")
		dense, err := gf2x.Random(drbg, r)
		if err != nil {
			panic(err)
		}
		sup, err := gf2x.RandomSupport(drbg, r, w)
		if err != nil {
			panic(err)
		}
		q := gf2x.New(r)
		for _, pos := range sup {
			q.SetBit(pos)
		}
		dst := gf2x.New(r)
		add("gf2x/mulsparse-hqc128", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dense.MulSparse(dst, sup)
			}
		})
		add("gf2x/muldense-hqc128", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dense.Mul(dst, q)
			}
		})
	}

	{
		// Sign-pool round trip: Submit + Wait through a 2-worker pool over
		// the cached dilithium3 signing context — the latency a connection
		// goroutine observes for its CertificateVerify on an idle server
		// (queueing excluded). The workers outlive the bench; a binary-
		// lifetime pool is what the live runtime runs too.
		p := mldsa.Dilithium3
		drbg := benchStream("microbench/signpool")
		_, sk, err := p.GenerateKey(drbg)
		if err != nil {
			panic(err)
		}
		signKey, err := p.NewSigningKey(sk)
		if err != nil {
			panic(err)
		}
		pool := live.NewSignPool(signKey, 2, 8)
		add("live/signpool-sign", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pool.Sign(msg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	{
		// Verify-pool round trip: Submit + Wait through a 2-worker batching
		// verification pool over the cached dilithium3 context, driven by
		// concurrent submitters so the batch path actually engages — the
		// latency a connection goroutine observes for its CertificateVerify
		// check on a loaded client.
		s := sig.MustByName("dilithium3")
		drbg := benchStream("microbench/verifypool")
		pub, priv, err := s.GenerateKey(drbg)
		if err != nil {
			panic(err)
		}
		sigBytes, err := s.Sign(priv, msg)
		if err != nil {
			panic(err)
		}
		pool := loadgen.NewVerifyPool(2, 16, 0)
		add("loadgen/verifypool", func(b *testing.B) {
			b.SetParallelism(4)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if !pool.VerifyCV(s, pub, msg, sigBytes) {
						b.Error("verify failed")
						return
					}
				}
			})
		})
	}

	{
		// TLS 1.3 key-schedule kernel: one full server-side HKDF derivation
		// chain (early → handshake → master, both traffic secret pairs,
		// finished MACs) through the scratch-buffer key schedule. Gated at
		// zero allocs — this runs once per handshake on the accept path.
		ks := tls13.NewKeyScheduleKernel()
		ss := make([]byte, 32)
		transcript := make([]byte, 512)
		benchStream("microbench/keyschedule").Read(ss)
		benchStream("microbench/keyschedule-transcript").Read(transcript)
		var sink byte
		add("tls13/keyschedule", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink ^= ks.Run(ss, transcript)
			}
			_ = sink
		})
	}
	{
		// Session-ticket seal + open round trip on the key-sharded store —
		// the per-resumption cost of ticket issuance and redemption with the
		// atomic counters and cached AEAD on the hot path.
		ts := tls13.NewTicketStore([16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
		psk := make([]byte, 32)
		benchStream("microbench/ticket").Read(psk)
		add("tls13/ticket-seal-open", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tkt, err := ts.Seal(psk, "kyber768")
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := ts.Open(tkt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	{
		// Windowed-telemetry kernels. window-record is the loadgen hot path
		// with -window set — counter adds plus one histogram bucket increment
		// under the timeline mutex, into windows that already exist. Gated at
		// zero allocs: window creation happens once per interval, never per
		// handshake. window-merge is the coordinator's per-progress-frame
		// fold of a worker snapshot (allocates clones by design; ns/op only).
		add("obs/window-record", func(b *testing.B) {
			tl := obs.NewTimeline(100 * time.Millisecond)
			for i := 0; i < 64; i++ {
				tl.RecordStart(time.Duration(i) * 100 * time.Millisecond)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				at := time.Duration(i%64) * 100 * time.Millisecond
				tl.RecordComplete(at, time.Millisecond, i%4 == 0, false)
			}
		})
		add("obs/window-merge", func(b *testing.B) {
			src := obs.NewTimeline(100 * time.Millisecond)
			for i := 0; i < 32; i++ {
				at := time.Duration(i) * 100 * time.Millisecond
				src.RecordStart(at)
				src.RecordComplete(at+time.Millisecond, time.Duration(i+1)*time.Millisecond, i%2 == 0, false)
			}
			dst := obs.NewTimeline(100 * time.Millisecond)
			if err := dst.Merge(src); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := dst.Merge(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	add("handshake/kyber768-dilithium3", handshakeBench("kyber768", "dilithium3"))
	add("handshake/x25519-ed25519", handshakeBench("x25519", "ed25519"))
	return out
}

// benchStream is the deterministic input stream for reproducible kernels.
func benchStream(label string) sha3.XOF {
	x := sha3.NewShake128()
	x.Write([]byte("pqtls-kernel-bench/" + label))
	return x
}

// handshakeBench runs one full sans-IO handshake per iteration (compute
// only, no simulated network).
func handshakeBench(kemName, sigName string) func(b *testing.B) {
	return func(b *testing.B) {
		creds, err := harness.CredentialsFor(sigName, 1)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			srv, err := pqtls.NewServer(&pqtls.Config{
				KEMName: kemName, SigName: sigName, ServerName: "server.example",
				Chain: creds.Chain, PrivateKey: creds.Priv,
			})
			if err != nil {
				b.Fatal(err)
			}
			cli, err := pqtls.NewClient(&pqtls.Config{
				KEMName: kemName, SigName: sigName, ServerName: "server.example",
				Roots: creds.Roots,
			})
			if err != nil {
				b.Fatal(err)
			}
			ch, err := cli.Start()
			if err != nil {
				b.Fatal(err)
			}
			flushes, err := srv.Respond(ch)
			if err != nil {
				b.Fatal(err)
			}
			var final []pqtls.Record
			for _, f := range flushes {
				out, done, err := cli.Consume(f.Records)
				if err != nil {
					b.Fatal(err)
				}
				if done {
					final = out
				}
			}
			if err := srv.Finish(final); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// runMicrobench is the `pqbench microbench` subcommand: it runs the kernel
// inventory through testing.Benchmark, optionally measures live loopback
// handshake throughput, and writes the machine-readable BENCH_*.json the
// regression gate (scripts/bench_gate.sh) consumes.
func runMicrobench(args []string) error {
	fs := flag.NewFlagSet("microbench", flag.ExitOnError)
	out := fs.String("out", "", "write JSON here (default stdout)")
	short := fs.Bool("short", false, "fast pass: 100ms per kernel, no live run (allocs/op still exact)")
	withLive := fs.Bool("live", true, "measure live loopback handshakes/sec for the headline suite")
	rate := fs.Float64("rate", 200, "live offered load (handshakes/second)")
	poolRate := fs.Float64("pool-rate", 900, "offered load for the precompute-enabled live probe (just past this host's pooled knee; deep overload only measures queue drain)")
	duration := fs.Duration("duration", 4*time.Second, "live schedule span")
	fs.Parse(args)

	// testing.Benchmark obeys the test.benchtime flag; register the testing
	// flags and set it explicitly so a plain binary run is deterministic in
	// duration. allocs/op is exact at any benchtime.
	testing.Init()
	benchtime := "1s"
	if *short {
		benchtime = "0.1s"
	}
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return err
	}
	flag.Parse()

	doc := benchFile{
		Schema:     benchSchema,
		Go:         runtime.Version(),
		Short:      *short,
		Benchmarks: map[string]benchResult{},
	}

	// The live probes run before the kernel sweep: tens of seconds of
	// saturated benchmarking can trip host-level CPU throttling (thermal or
	// cgroup quota), which would bias a trailing wall-clock throughput
	// measurement. Kernel benches self-calibrate per kernel and gate on
	// allocs in CI, so ordering does not affect them the same way.
	if *withLive && !*short {
		lr, err := liveThroughput("kyber768", "dilithium3", *rate, *duration, false)
		if err != nil {
			return fmt.Errorf("live measurement: %w", err)
		}
		// The pooled probe runs the whole precompute subsystem — key-share
		// factory, amortized client caches, 2-worker sign pool, batched
		// server encapsulation, batched client verification — at a higher
		// offered load, since the point of the subsystem is to lift the
		// server's ceiling, not its behaviour at the baseline rate.
		pr, err := liveThroughput("kyber768", "dilithium3", *poolRate, *duration, true)
		if err != nil {
			return fmt.Errorf("live measurement (pool): %w", err)
		}
		doc.Live = map[string]liveResult{
			"kyber768+dilithium3":      *lr,
			"kyber768+dilithium3+pool": *pr,
		}
		fmt.Fprintf(os.Stderr, "%-32s %12.1f handshakes/s (p50 %.2fms, p95 %.2fms)\n",
			"live/kyber768-dilithium3", lr.HandshakesPerSec, lr.P50Ms, lr.P95Ms)
		fmt.Fprintf(os.Stderr, "%-32s %12.1f handshakes/s (p50 %.2fms, p95 %.2fms)\n",
			"live/kyber768-dilithium3+pool", pr.HandshakesPerSec, pr.P50Ms, pr.P95Ms)
	}

	for _, nb := range kernelBenchmarks() {
		r := testing.Benchmark(nb.fn)
		doc.Benchmarks[nb.name] = benchResult{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		fmt.Fprintf(os.Stderr, "%-32s %12.0f ns/op %8d B/op %6d allocs/op\n",
			nb.name, doc.Benchmarks[nb.name].NsPerOp, r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

// liveThroughput measures real loopback handshakes/sec with the
// internal/live server runtime and internal/loadgen's open-loop schedule —
// the same plumbing as `pqbench live`, reduced to the numbers the bench
// file records. The pooled probe runs the sharded accept path (one shard
// per core) with the schedule split across as many dispatchers, the same
// configuration `pqbench saturate` sweeps.
func liveThroughput(kemName, sigName string, rate float64, duration time.Duration, pooled bool) (*liveResult, error) {
	creds, err := harness.CredentialsFor(sigName, 1)
	if err != nil {
		return nil, err
	}
	srvCfg := &tls13.Config{
		KEMName: kemName, SigName: sigName, ServerName: "server.example",
		Chain: creds.Chain, PrivateKey: creds.Priv, Buffer: tls13.BufferImmediate,
	}
	srvOpts := live.Options{
		Config:           srvCfg,
		MaxConns:         128,
		HandshakeTimeout: 10 * time.Second,
	}
	workers := 1
	var addr string
	var shutdown func(time.Duration) error
	if pooled {
		srvOpts.SignWorkers = 2
		srvOpts.EncapBatch = 16
		srvOpts.MaxConns = 256
		workers = runtime.GOMAXPROCS(0)
		ss, err := live.ServeSharded("127.0.0.1:0", srvOpts, workers)
		if err != nil {
			return nil, err
		}
		addr = ss.Addr().String()
		shutdown = ss.Shutdown
	} else {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		srv, err := live.Serve(ln, srvOpts)
		if err != nil {
			return nil, err
		}
		addr = srv.Addr().String()
		shutdown = srv.Shutdown
	}
	warmup := duration / 10
	sched := loadgen.NewSchedule(1, loadgen.DistExponential, rate, duration)
	runOpts := loadgen.Options{
		Addr:             addr,
		Config:           &tls13.Config{KEMName: kemName, SigName: sigName, ServerName: "server.example", Roots: creds.Roots},
		Schedule:         sched,
		Warmup:           warmup,
		MaxConcurrent:    srvOpts.MaxConns,
		HandshakeTimeout: 10 * time.Second,
	}
	if pooled {
		keyPool := harness.NewKeyPool()
		err := keyPool.StartFactory(harness.FactoryOptions{
			Suites: []string{kemName}, Target: 128, LowWater: 32, Batch: 32,
		})
		if err != nil {
			shutdown(time.Second)
			return nil, err
		}
		defer keyPool.StopFactory()
		runOpts.KeyShares = keyPool
		runOpts.Amortize = true
		vp := loadgen.NewVerifyPool(2, 16, 0)
		defer vp.Close()
		runOpts.VerifyPool = vp
		// Discarded warm-up pass against the same server before the clock
		// matters: fills the key-share factory, sizes the GC heap, and warms
		// the shard runtimes — the steady state a saturate ladder reaches on
		// its earlier rungs. Without it the probe measures cold-start.
		warmOpts := runOpts
		warmOpts.Schedule = loadgen.NewSchedule(2, loadgen.DistExponential, rate/3, time.Second)
		warmOpts.Warmup = 0
		if _, err := loadgen.RunWorkers(warmOpts, workers); err != nil {
			shutdown(time.Second)
			return nil, err
		}
	}
	res, err := loadgen.RunWorkers(runOpts, workers)
	if err != nil {
		shutdown(time.Second)
		return nil, err
	}
	if err := shutdown(5 * time.Second); err != nil {
		return nil, err
	}
	return &liveResult{
		HandshakesPerSec: res.Rate(warmup),
		P50Ms:            float64(res.Hist.Quantile(0.50)) / float64(time.Millisecond),
		P95Ms:            float64(res.Hist.Quantile(0.95)) / float64(time.Millisecond),
		Completed:        int(res.Completed),
		Failed:           int(res.Failed),
	}, nil
}

// runBenchGate is the `pqbench benchgate` subcommand: a dependency-free
// comparison of two BENCH_*.json files. It fails when a kernel regresses
// by more than -max-regress in ns/op (unless -allocs-only, for noisy CI
// hosts) or when allocs/op grow at all, and when a previously measured
// kernel disappears. Live throughput is reported but never gated.
func runBenchGate(args []string) error {
	fs := flag.NewFlagSet("benchgate", flag.ExitOnError)
	oldPath := fs.String("old", "", "baseline BENCH_*.json")
	newPath := fs.String("new", "", "candidate BENCH_*.json")
	maxRegress := fs.Float64("max-regress", 0.10, "allowed fractional ns/op regression")
	allocsOnly := fs.Bool("allocs-only", false, "gate only allocs/op (for hosts with noisy timing)")
	fs.Parse(args)
	if *oldPath == "" || *newPath == "" {
		return fmt.Errorf("benchgate: -old and -new are required")
	}
	oldDoc, err := readBenchFile(*oldPath)
	if err != nil {
		return err
	}
	newDoc, err := readBenchFile(*newPath)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(oldDoc.Benchmarks))
	for name := range oldDoc.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failures := 0
	for _, name := range names {
		old := oldDoc.Benchmarks[name]
		cur, ok := newDoc.Benchmarks[name]
		if !ok {
			fmt.Printf("FAIL %-32s missing from %s\n", name, *newPath)
			failures++
			continue
		}
		delta := 0.0
		if old.NsPerOp > 0 {
			delta = cur.NsPerOp/old.NsPerOp - 1
		}
		// Zero-alloc kernels must stay at exactly zero; the rest get 5%+1
		// headroom because AllocsPerOp is a per-iteration average and
		// sync.Pool reuse under GC pressure jitters it slightly.
		allocLimit := old.AllocsPerOp + old.AllocsPerOp/20 + 1
		if old.AllocsPerOp == 0 {
			allocLimit = 0
		}
		switch {
		case cur.AllocsPerOp > allocLimit:
			fmt.Printf("FAIL %-32s allocs/op %d -> %d\n", name, old.AllocsPerOp, cur.AllocsPerOp)
			failures++
		case !*allocsOnly && delta > *maxRegress:
			fmt.Printf("FAIL %-32s %+.1f%% ns/op (%.0f -> %.0f, limit %+.0f%%)\n",
				name, delta*100, old.NsPerOp, cur.NsPerOp, *maxRegress*100)
			failures++
		default:
			fmt.Printf("ok   %-32s %+.1f%% ns/op, allocs %d -> %d\n",
				name, delta*100, old.AllocsPerOp, cur.AllocsPerOp)
		}
	}
	for suite, old := range oldDoc.Live {
		if cur, ok := newDoc.Live[suite]; ok && old.HandshakesPerSec > 0 {
			fmt.Printf("info live/%s %+.1f%% handshakes/s (not gated)\n",
				suite, (cur.HandshakesPerSec/old.HandshakesPerSec-1)*100)
		}
	}
	if failures > 0 {
		return fmt.Errorf("benchgate: %d regression(s) vs %s", failures, *oldPath)
	}
	fmt.Printf("benchgate: %d kernels within limits vs %s\n", len(names), *oldPath)
	return nil
}

func readBenchFile(path string) (*benchFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchFile
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != benchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, benchSchema)
	}
	return &doc, nil
}
