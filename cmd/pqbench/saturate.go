package main

import (
	"crypto/sha256"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"pqtls/internal/harness"
	"pqtls/internal/live"
	"pqtls/internal/loadgen"
	"pqtls/internal/obs"
	"pqtls/internal/tls13"
)

// runSaturate is the `pqbench saturate` subcommand: it answers "how many
// handshakes per second can this host actually do, and does the sharded
// accept path scale?" For each accept-shard count in the sweep it starts a
// ShardedServer, then climbs an offered-rate ladder — each rung a seeded
// open-loop schedule dispatched by as many loadgen workers as the server
// has shards — until achieved/offered drops below the knee threshold. The
// arrival plans are deterministic (same seed, same digests); only the
// measured rates are host-dependent.
func runSaturate(args []string) error {
	fs := flag.NewFlagSet("saturate", flag.ExitOnError)
	kemName := fs.String("kem", "kyber768", "key agreement (see pqbench list)")
	sigName := fs.String("sig", "dilithium3", "certificate signature algorithm")
	resume := fs.Bool("resume", false, "measure PSK-resumed handshakes")
	duration := fs.Duration("duration", 2*time.Second, "schedule span per ladder rung")
	warmup := fs.Duration("warmup", 0, "per-rung warmup (default duration/10)")
	dist := fs.String("dist", "exp", "inter-arrival distribution: exp|uniform")
	seed := fs.Int64("seed", 1, "arrival-schedule seed")
	startRate := fs.Float64("rate", 200, "offered load of the first ladder rung (handshakes/s)")
	growth := fs.Float64("growth", 1.5, "offered-rate multiplier between rungs")
	maxRate := fs.Float64("rate-max", 0, "stop the ladder beyond this offered rate (0 = no cap)")
	knee := fs.Float64("knee", 0.9, "achieved/offered ratio below which the ladder stops")
	maxRungs := fs.Int("rungs", 10, "maximum ladder rungs per shard count")
	shardsFlag := fs.String("shards", "", "comma-separated accept-shard counts to sweep (default 1..GOMAXPROCS)")
	conns := fs.Int("conns", 256, "max concurrent handshakes (client pool and server limiter)")
	hsTimeout := fs.Duration("timeout", 10*time.Second, "per-connection handshake deadline")
	pool := fs.Bool("pool", true, "precompute subsystem end to end: key-share factory, amortized caches, signing workers")
	signWorkers := fs.Int("sign-workers", 2, "server signing worker pool size when -pool is set")
	csvPath := fs.String("csv", "", "also write one CSV row per rung to this file")
	window := fs.Duration("window", 0, "windowed telemetry interval: per-rung progress lines and peak-rung timelines (0 = off)")
	timelinePath := fs.String("timeline", "", "write each shard count's peak-rung timeline artifacts to <base>_shards<N>.{jsonl,csv} (implies -window 1s if unset)")
	fs.Parse(args)
	*window = resolveWindow(*window, *timelinePath)
	if err := validateSaturate(*startRate, *growth, *knee, *maxRate, *maxRungs, *duration); err != nil {
		return err
	}
	if *warmup <= 0 {
		*warmup = *duration / 10
	}
	distVal, err := loadgen.ParseDist(*dist)
	if err != nil {
		return err
	}
	shardCounts, warnings, err := parseShardSweep(*shardsFlag, runtime.GOMAXPROCS(0))
	if err != nil {
		return err
	}
	for _, w := range warnings {
		fmt.Fprintln(os.Stderr, "pqbench:", w)
	}

	creds, err := harness.CredentialsFor(*sigName, 1)
	if err != nil {
		return err
	}
	srvCfg := &tls13.Config{
		KEMName: *kemName, SigName: *sigName, ServerName: "server.example",
		Chain: creds.Chain, PrivateKey: creds.Priv, Buffer: tls13.BufferImmediate,
	}
	cliCfg := &tls13.Config{
		KEMName: *kemName, SigName: *sigName, ServerName: "server.example", Roots: creds.Roots,
	}

	var keyPool *harness.KeyPool
	if *pool {
		keyPool = harness.NewKeyPool()
		err := keyPool.StartFactory(harness.FactoryOptions{
			Suites: []string{*kemName}, Target: 128, LowWater: 32, Batch: 32,
		})
		if err != nil {
			return err
		}
		defer keyPool.StopFactory()
	}

	fmt.Printf("pqbench saturate: %s + %s over loopback, shard sweep %v, ladder from %g/s ×%g (knee %.2f)\n",
		*kemName, *sigName, shardCounts, *startRate, *growth, *knee)

	type rung struct {
		shards           int
		offered          float64
		achieved         float64
		ratio            float64
		p50, p95         time.Duration
		completed, fails uint64
		digest           string
		timeline         *obs.Timeline
	}
	var rungs []rung
	peak := make(map[int]rung) // best achieved rung per shard count
	sweep := sha256.New()      // running fingerprint of every rung's arrival plan

	for _, n := range shardCounts {
		ss, err := live.ServeSharded("127.0.0.1:0", live.Options{
			Config:           srvCfg,
			MaxConns:         *conns,
			HandshakeTimeout: *hsTimeout,
			IssueTickets:     *resume,
			SignWorkers:      boolInt(*pool) * *signWorkers,
		}, n)
		if err != nil {
			return err
		}

		offered := *startRate
		for r := 0; r < *maxRungs; r++ {
			if *maxRate > 0 && offered > *maxRate {
				break
			}
			sched := loadgen.NewSchedule(*seed, distVal, offered, *duration)
			if len(sched.Offsets) == 0 {
				break
			}
			opts := loadgen.Options{
				Addr:             ss.Addr().String(),
				Config:           cliCfg,
				Schedule:         sched,
				Warmup:           *warmup,
				MaxConcurrent:    *conns,
				HandshakeTimeout: *hsTimeout,
				Resume:           *resume,
				Amortize:         *pool,
			}
			if keyPool != nil {
				opts.KeyShares = keyPool
			}
			stopProgress := func() {}
			if *window > 0 {
				// Each rung gets a fresh timeline (offsets restart at the
				// rung's own schedule zero) and its own progress line.
				tl := obs.NewTimeline(*window)
				opts.Timeline = tl
				stopProgress = startTimelineProgress(
					fmt.Sprintf("saturate shards=%d rung=%d", n, r), *window,
					func() *obs.Timeline { return tl })
			}
			res, err := loadgen.RunWorkers(opts, n)
			stopProgress()
			if err != nil {
				ss.Shutdown(time.Second)
				return err
			}
			achieved := res.Rate(*warmup)
			ratio := 0.0
			if offered > 0 {
				ratio = achieved / offered
			}
			rg := rung{
				shards: n, offered: offered, achieved: achieved, ratio: ratio,
				p50: res.Hist.Quantile(0.50), p95: res.Hist.Quantile(0.95),
				completed: res.Completed, fails: res.Failed, digest: sched.Digest(),
				timeline: res.Timeline,
			}
			rungs = append(rungs, rg)
			fmt.Fprintf(sweep, "%d|%s\n", n, rg.digest)
			fmt.Printf("  shards %d rung %d: offered %7.1f/s achieved %7.1f/s ratio %.3f p50 %s failed %d digest %s\n",
				n, r, offered, achieved, ratio, ms(rg.p50)+"ms", res.Failed, rg.digest)
			if best, ok := peak[n]; !ok || achieved > best.achieved {
				peak[n] = rg
			}
			if ratio < *knee {
				break // the knee: the host stopped keeping up with the plan
			}
			offered *= *growth
		}
		if err := ss.Shutdown(5 * time.Second); err != nil {
			fmt.Fprintln(os.Stderr, "pqbench:", err)
		}
	}

	// The handshakes/sec-vs-cores table: one row per shard count, at the
	// rung where that configuration achieved its highest rate.
	fmt.Println("\nscaling (peak achieved rate per accept-shard count):")
	fmt.Println("  shards | offered/s | achieved/s | ratio |  p50 ms |  p95 ms | failed")
	fmt.Println("  -------+-----------+------------+-------+---------+---------+-------")
	for _, n := range shardCounts {
		p, ok := peak[n]
		if !ok {
			continue
		}
		fmt.Printf("  %6d | %9.1f | %10.1f | %5.3f | %7s | %7s | %6d\n",
			n, p.offered, p.achieved, p.ratio, ms(p.p50), ms(p.p95), p.fails)
	}
	fmt.Printf("sweep digest %x (seeded arrival plans; rates are this host's)\n",
		sweep.Sum(nil)[:8])

	if *timelinePath != "" {
		// One artifact pair per shard count, at its peak rung — the windowed
		// view of the configuration's best sustained minute.
		for _, n := range shardCounts {
			p, ok := peak[n]
			if !ok {
				continue
			}
			base := fmt.Sprintf("%s_shards%d", *timelinePath, n)
			if err := writeTimelineArtifacts(p.timeline, base); err != nil {
				return err
			}
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		w := csv.NewWriter(f)
		w.Write([]string{"shards", "offered_hs_s", "achieved_hs_s", "ratio",
			"p50_us", "p95_us", "completed", "failed", "digest"})
		for _, rg := range rungs {
			w.Write([]string{
				strconv.Itoa(rg.shards),
				fmt.Sprintf("%.2f", rg.offered),
				fmt.Sprintf("%.2f", rg.achieved),
				fmt.Sprintf("%.4f", rg.ratio),
				strconv.FormatInt(rg.p50.Microseconds(), 10),
				strconv.FormatInt(rg.p95.Microseconds(), 10),
				strconv.FormatUint(rg.completed, 10),
				strconv.FormatUint(rg.fails, 10),
				rg.digest,
			})
		}
		w.Flush()
		if err := w.Error(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d rungs to %s\n", len(rungs), *csvPath)
	}
	return nil
}

// validateSaturate rejects ladder parameters under which the sweep would
// never terminate, never climb, or never measure: non-positive starting
// rate, a growth factor at or below 1 (the ladder must climb to find the
// knee), a knee ratio outside (0, 1], a negative rate cap, fewer than one
// rung, or a non-positive rung duration.
func validateSaturate(rate, growth, knee, maxRate float64, rungs int, duration time.Duration) error {
	if rate <= 0 {
		return fmt.Errorf("pqbench: -rate %g must be positive", rate)
	}
	if growth <= 1 {
		return fmt.Errorf("pqbench: -growth %g must exceed 1 (the ladder has to climb)", growth)
	}
	if knee <= 0 || knee > 1 {
		return fmt.Errorf("pqbench: -knee %g must be in (0, 1]", knee)
	}
	if maxRate < 0 {
		return fmt.Errorf("pqbench: -rate-max %g must not be negative", maxRate)
	}
	if rungs < 1 {
		return fmt.Errorf("pqbench: -rungs %d must be at least 1", rungs)
	}
	if duration <= 0 {
		return fmt.Errorf("pqbench: -duration %v must be positive", duration)
	}
	return nil
}

// parseShardSweep turns "-shards 1,2,4" into the sweep list; empty means
// every count from 1 to maxShards (GOMAXPROCS). Zero and negative counts
// are errors; counts beyond maxShards are capped with a warning — accept
// shards beyond the core count only add contention, never throughput.
func parseShardSweep(s string, maxShards int) ([]int, []string, error) {
	if s == "" {
		out := make([]int, 0, maxShards)
		for i := 1; i <= maxShards; i++ {
			out = append(out, i)
		}
		return out, nil, nil
	}
	var out []int
	var warnings []string
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, nil, fmt.Errorf("pqbench: bad -shards entry %q (want a positive count)", part)
		}
		if v > maxShards {
			warnings = append(warnings,
				fmt.Sprintf("-shards %d exceeds GOMAXPROCS (%d); capping — extra shards only contend", v, maxShards))
			v = maxShards
		}
		out = append(out, v)
	}
	return out, warnings, nil
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
