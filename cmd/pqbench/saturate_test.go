package main

import (
	"reflect"
	"testing"
	"time"
)

// TestValidateSaturate pins the ladder guard: parameters under which the
// sweep would hang (growth <= 1 with no rate cap), spin (non-positive
// rate), or never stop (knee outside (0,1]) are rejected before any server
// starts.
func TestValidateSaturate(t *testing.T) {
	ok := func(rate, growth, knee, maxRate float64, rungs int, d time.Duration) error {
		return validateSaturate(rate, growth, knee, maxRate, rungs, d)
	}
	if err := ok(200, 1.5, 0.9, 0, 10, 2*time.Second); err != nil {
		t.Fatalf("default parameters rejected: %v", err)
	}
	bad := []struct {
		name                    string
		rate, growth, knee, max float64
		rungs                   int
		d                       time.Duration
	}{
		{"zero rate", 0, 1.5, 0.9, 0, 10, time.Second},
		{"negative rate", -5, 1.5, 0.9, 0, 10, time.Second},
		{"flat growth", 200, 1, 0.9, 0, 10, time.Second},
		{"shrinking growth", 200, 0.5, 0.9, 0, 10, time.Second},
		{"zero knee", 200, 1.5, 0, 0, 10, time.Second},
		{"negative knee", 200, 1.5, -0.1, 0, 10, time.Second},
		{"knee above 1", 200, 1.5, 1.1, 0, 10, time.Second},
		{"negative rate cap", 200, 1.5, 0.9, -1, 10, time.Second},
		{"zero rungs", 200, 1.5, 0.9, 0, 0, time.Second},
		{"negative rungs", 200, 1.5, 0.9, 0, -3, time.Second},
		{"zero duration", 200, 1.5, 0.9, 0, 10, 0},
	}
	for _, c := range bad {
		if err := ok(c.rate, c.growth, c.knee, c.max, c.rungs, c.d); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

// TestParseShardSweep pins the -shards parser: explicit lists parse in
// order, zero/negative/garbage entries error, counts beyond GOMAXPROCS cap
// with a warning, and the empty default enumerates 1..GOMAXPROCS.
func TestParseShardSweep(t *testing.T) {
	got, warns, err := parseShardSweep("1, 2,4", 8)
	if err != nil || len(warns) != 0 || !reflect.DeepEqual(got, []int{1, 2, 4}) {
		t.Fatalf("parseShardSweep(\"1, 2,4\") = %v, %v, %v", got, warns, err)
	}
	for _, in := range []string{"0", "-1", "2,x", "", " "} {
		if in == "" {
			continue // empty is the default sweep, tested below
		}
		if _, _, err := parseShardSweep(in, 8); err == nil {
			t.Errorf("parseShardSweep(%q) accepted", in)
		}
	}
	got, warns, err = parseShardSweep("2,64", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{2, 4}) {
		t.Fatalf("capped sweep = %v, want [2 4]", got)
	}
	if len(warns) != 1 {
		t.Fatalf("capping produced %d warnings, want 1", len(warns))
	}
	got, warns, err = parseShardSweep("", 3)
	if err != nil || len(warns) != 0 || !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("default sweep = %v, %v, %v", got, warns, err)
	}
}
