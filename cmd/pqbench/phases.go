package main

import (
	"bytes"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pqtls/internal/harness"
	"pqtls/internal/live"
	"pqtls/internal/loadgen"
	"pqtls/internal/obs"
	"pqtls/internal/tls13"
)

// runPhases is the `pqbench phases` subcommand: it runs one (KA, SA) grid
// cell with span tracing enabled and renders the stacked phase breakdown —
// where each millisecond of the handshake goes, on both endpoints. With
// -buffer both (the default) it runs the cell under both server buffering
// policies, making the flight-wait interaction from Section 5.3 directly
// visible. Traces are written as JSONL plus an aggregated CSV under -out.
func runPhases(args []string) error {
	fs := flag.NewFlagSet("phases", flag.ExitOnError)
	kemName := fs.String("ka", "kyber768", "key agreement (see pqbench list)")
	sigName := fs.String("sa", "dilithium3", "certificate signature algorithm")
	buffer := fs.String("buffer", "both", "server flight buffering: both|default|immediate")
	samples := fs.Int("samples", 9, "traced handshakes per cell")
	seed := fs.Int64("seed", 1, "campaign seed")
	resume := fs.Bool("resume", false, "trace PSK-resumed handshakes")
	liveMode := fs.Bool("live", false, "trace real loopback handshakes instead of the modeled testbed (client side only)")
	rate := fs.Float64("rate", 200, "live mode: offered load in handshakes/second")
	duration := fs.Duration("duration", 2*time.Second, "live mode: schedule span")
	outDir := fs.String("out", "results", "directory for JSONL traces and CSV aggregates")
	fs.Parse(args)

	var policies []tls13.BufferPolicy
	switch *buffer {
	case "both":
		policies = []tls13.BufferPolicy{tls13.BufferDefault, tls13.BufferImmediate}
	case "default":
		policies = []tls13.BufferPolicy{tls13.BufferDefault}
	case "immediate":
		policies = []tls13.BufferPolicy{tls13.BufferImmediate}
	default:
		return fmt.Errorf("unknown -buffer %q (want both, default, or immediate)", *buffer)
	}
	if *liveMode {
		return runPhasesLive(*kemName, *sigName, policies, *rate, *duration, *resume, *seed, *outDir)
	}

	waits := map[tls13.BufferPolicy]time.Duration{}
	for _, policy := range policies {
		r, err := harness.RunPhases(harness.PhasesOptions{
			KEM: *kemName, Sig: *sigName, Link: harness.ScenarioTestbed,
			Buffer: policy, Samples: *samples, Seed: *seed, Resume: *resume,
		})
		if err != nil {
			return err
		}
		if err := harness.RenderPhases(os.Stdout, r); err != nil {
			return err
		}
		// The report is only honest if the client's phases reconstruct the
		// tap's Total; a disagreement beyond 1% means the instrumentation
		// dropped or double-counted a phase.
		if e := r.SumError(); e > 0.01 {
			return fmt.Errorf("phase sum %v disagrees with tap total %v by %.2f%% (>1%%)",
				r.ClientSumP50, r.TotalP50, e*100)
		}
		waits[policy] = r.FlightWaitP50()
		if err := writePhaseArtifacts(*outDir, *kemName, *sigName, harness.BufferName(policy), r.Collector, func(w *os.File) error {
			return harness.WritePhasesCSV(w, r)
		}); err != nil {
			return err
		}
		fmt.Println()
	}
	if len(policies) == 2 {
		fmt.Printf("flight-wait p50: default %s ms vs immediate %s ms — early ServerHello push lets the client overlap decapsulation with the server still signing\n",
			ms(waits[tls13.BufferDefault]), ms(waits[tls13.BufferImmediate]))
	}
	return nil
}

// writePhaseArtifacts emits the raw JSONL trace (self-validated against the
// span schema) and the aggregated CSV for one cell.
func writePhaseArtifacts(dir, kemName, sigName, bufName string, col *obs.Collector, writeCSV func(*os.File) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	stem := fmt.Sprintf("phases_%s_%s_%s", sanitize(kemName), sanitize(sigName), bufName)

	var buf bytes.Buffer
	if err := col.WriteJSONL(&buf); err != nil {
		return err
	}
	n, err := obs.ValidateJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return fmt.Errorf("emitted trace failed schema self-check: %w", err)
	}
	jsonlPath := filepath.Join(dir, stem+".jsonl")
	if err := os.WriteFile(jsonlPath, buf.Bytes(), 0o644); err != nil {
		return err
	}

	csvPath := filepath.Join(dir, stem+".csv")
	f, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	if err := writeCSV(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("trace schema ok: %d spans -> %s (aggregate %s)\n", n, jsonlPath, csvPath)
	return nil
}

// sanitize makes an algorithm name filesystem-friendly (rsa:2048 -> rsa2048).
func sanitize(name string) string {
	return strings.ReplaceAll(name, ":", "")
}

// runPhasesLive traces real loopback handshakes: the loadgen client records
// wall-clock spans (tls13 phases plus socket flight-waits). Only the client
// side is visible — the server runs concurrent handshakes, so its phase
// times go to the /metrics histogram instead of per-handshake traces. The
// sum check does not apply: wall-clock phases overlap scheduler noise, so
// the breakdown is informational, not an identity.
func runPhasesLive(kemName, sigName string, policies []tls13.BufferPolicy, rate float64, duration time.Duration, resume bool, seed int64, outDir string) error {
	for _, policy := range policies {
		creds, err := harness.CredentialsFor(sigName, 1)
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv, err := live.Serve(ln, live.Options{
			Config: &tls13.Config{
				KEMName: kemName, SigName: sigName, ServerName: "server.example",
				Chain: creds.Chain, PrivateKey: creds.Priv, Buffer: policy,
			},
			IssueTickets: resume,
		})
		if err != nil {
			return err
		}
		col := &obs.Collector{}
		sched := loadgen.NewSchedule(seed, loadgen.DistExponential, rate, duration)
		res, err := loadgen.Run(loadgen.Options{
			Addr:     srv.Addr().String(),
			Config:   &tls13.Config{KEMName: kemName, SigName: sigName, ServerName: "server.example", Roots: creds.Roots},
			Schedule: sched,
			Warmup:   duration / 10,
			Resume:   resume,
			Trace:    col,
		})
		if shutErr := srv.Shutdown(5 * time.Second); shutErr != nil && err == nil {
			err = shutErr
		}
		if err != nil {
			return err
		}
		bufName := harness.BufferName(policy)
		fmt.Printf("# phases %s/%s live loopback buffer=%s traces=%d (client side, wall clock)\n",
			kemName, sigName, bufName, col.Len())
		sts := obs.AggregatePhases(col.Traces())
		if err := obs.WritePhaseTable(os.Stdout, sts); err != nil {
			return err
		}
		fmt.Printf("total p50 %s ms over %d measured handshakes (CH written -> Finished sent)\n",
			ms(res.Hist.Quantile(0.50)), res.Hist.Count())
		if err := writePhaseArtifacts(outDir, kemName, sigName, "live-"+bufName, col, func(w *os.File) error {
			return writeLivePhasesCSV(w, kemName, sigName, bufName, sts)
		}); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

// writeLivePhasesCSV mirrors harness.WritePhasesCSV's layout for live
// traces (no share column values: there is no modeled Total to divide by).
func writeLivePhasesCSV(w *os.File, kemName, sigName, bufName string, sts []obs.PhaseStat) error {
	if _, err := fmt.Fprintln(w, "ka,sa,buffer,endpoint,phase,samples,p50_us,p95_us,mean_us,share"); err != nil {
		return err
	}
	for _, st := range sts {
		if _, err := fmt.Fprintf(w, "%s,%s,live-%s,%s,%s,%d,%d,%d,%d,\n",
			kemName, sigName, bufName, st.Endpoint, st.Phase, st.Samples,
			st.P50.Microseconds(), st.P95.Microseconds(), st.Mean.Microseconds()); err != nil {
			return err
		}
	}
	return nil
}
