package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"sort"
	"time"

	"pqtls/internal/dist"
	"pqtls/internal/harness"
	"pqtls/internal/live"
	"pqtls/internal/loadgen"
	"pqtls/internal/obs"
	"pqtls/internal/tls13"
)

// runDistCoordinator is the `pqbench dist-coordinator` subcommand: it
// partitions one seeded arrival plan across a fleet of dist-worker
// processes, merges their streamed per-shard Results bucket-exactly, and
// renders the same Table-2-style row `pqbench live` prints — plus the
// per-worker breakdown and the merged digest. With -simulate -verify it
// also reruns the identical plan single-process and fails unless the
// distributed digest, counters, and quantiles match exactly.
func runDistCoordinator(args []string) error {
	fs := flag.NewFlagSet("dist-coordinator", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:0", "address workers connect to")
	workers := fs.Int("workers", 2, "worker quorum: the plan is split into this many shards")
	workersLocal := fs.Int("workers-local", 0, "self-spawn this many dist-worker processes (0 = expect external workers)")
	kemName := fs.String("kem", "kyber768", "key agreement (see pqbench list)")
	sigName := fs.String("sig", "dilithium3", "certificate signature algorithm")
	resume := fs.Bool("resume", false, "PSK-resumed handshakes (one priming handshake per worker)")
	amortize := fs.Bool("amortize", false, "share chain/verifier caches within each worker's pool")
	simulate := fs.Bool("simulate", false, "deterministic synthetic latencies: no server, exact cross-process reproducibility")
	rate := fs.Float64("rate", 200, "offered load in handshakes/second (open loop, whole fleet)")
	duration := fs.Duration("duration", 2*time.Second, "schedule span")
	warmup := fs.Duration("warmup", 0, "discard handshakes scheduled before this offset (default duration/10)")
	distName := fs.String("dist", "exp", "inter-arrival distribution: exp|uniform")
	seed := fs.Int64("seed", 1, "arrival-schedule seed")
	conns := fs.Int("conns", 128, "max concurrent handshakes per worker")
	hsTimeout := fs.Duration("timeout", 10*time.Second, "per-connection handshake deadline")
	startDelay := fs.Duration("start-delay", 200*time.Millisecond, "worker pacing delay after Assign, absorbing assignment skew")
	joinTimeout := fs.Duration("join-timeout", 30*time.Second, "how long to wait for the worker quorum")
	hbTimeout := fs.Duration("heartbeat-timeout", 5*time.Second, "declare a silent worker dead after this long and reassign its shards")
	addr := fs.String("addr", "", "target server address for real runs (empty = start a loopback server here)")
	verify := fs.Bool("verify", false, "with -simulate: rerun single-process and require exact digest/counter/quantile equality")
	killAfter := fs.Duration("kill-worker-after", 0, "fault-injection: SIGKILL one local worker after this delay and require a reassignment (needs -workers-local)")
	metrics := fs.String("metrics", "", "serve Prometheus /metrics + /healthz on this address for the run")
	window := fs.Duration("window", 0, "windowed telemetry interval: workers stream per-window snapshots, the coordinator prints fleet-rollup progress lines and -verify pins the merged timeline (0 = off)")
	timelinePath := fs.String("timeline", "", "write the merged fleet timeline artifacts to this path base (.jsonl + .csv; implies -window 1s if unset)")
	fs.Parse(args)
	*window = resolveWindow(*window, *timelinePath)

	if *workers < 1 {
		return fmt.Errorf("dist-coordinator: -workers %d must be at least 1", *workers)
	}
	if *verify && !*simulate {
		return errors.New("dist-coordinator: -verify requires -simulate (real latencies are not reproducible)")
	}
	if *killAfter > 0 && *workersLocal < 2 {
		return errors.New("dist-coordinator: -kill-worker-after needs -workers-local >= 2 (a survivor must take the shard)")
	}
	distVal, err := loadgen.ParseDist(*distName)
	if err != nil {
		return err
	}
	if *warmup <= 0 {
		*warmup = *duration / 10
	}

	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	reg := obs.NewRegistry()

	// Real runs need a server under test; by default the coordinator hosts
	// one on loopback, exactly as `pqbench live` does.
	job := dist.JobSpec{
		KEM: *kemName, Sig: *sigName, Addr: *addr,
		Simulate: *simulate, Resume: *resume, Amortize: *amortize,
		Warmup: *warmup, MaxConcurrent: *conns,
		HandshakeTimeout: *hsTimeout, StartDelay: *startDelay,
		WindowInterval: *window,
	}
	var srv *live.Server
	if !*simulate && *addr == "" {
		creds, err := harness.CredentialsFor(*sigName, 1)
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv, err = live.Serve(ln, live.Options{
			Config: &tls13.Config{
				KEMName: *kemName, SigName: *sigName, ServerName: "server.example",
				Chain: creds.Chain, PrivateKey: creds.Priv, Buffer: tls13.BufferImmediate,
			},
			MaxConns:         *conns * *workers,
			HandshakeTimeout: *hsTimeout,
			IssueTickets:     *resume,
		})
		if err != nil {
			return err
		}
		job.Addr = srv.Addr().String()
		defer srv.Shutdown(5 * time.Second)
	}

	coord, err := dist.NewCoordinator(*listen, dist.CoordinatorOptions{
		Workers: *workers, JoinTimeout: *joinTimeout, HeartbeatTimeout: *hbTimeout,
		Registry: reg, MetricsAddr: *metrics, Logf: logf,
	})
	if err != nil {
		return err
	}
	defer coord.Close()
	if a := coord.MetricsAddr(); a != nil {
		fmt.Printf("metrics: http://%s/metrics (healthz on the same listener)\n", a)
	}
	fmt.Printf("pqbench dist-coordinator: listening on %s (quorum %d)\n", coord.Addr(), *workers)

	// Self-spawned local workers re-exec this binary as dist-worker; their
	// heartbeat interval is derived from the coordinator's timeout so a
	// short fault-injection timeout keeps the watchdog responsive.
	var procs []*exec.Cmd
	if *workersLocal > 0 {
		hbInterval := *hbTimeout / 5
		if hbInterval < 20*time.Millisecond {
			hbInterval = 20 * time.Millisecond
		}
		exe, err := os.Executable()
		if err != nil {
			exe = os.Args[0]
		}
		for i := 0; i < *workersLocal; i++ {
			cmd := exec.Command(exe, "dist-worker",
				"-coordinator", coord.Addr().String(),
				"-name", fmt.Sprintf("local-%d", i),
				"-heartbeat-interval", hbInterval.String())
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return fmt.Errorf("dist-coordinator: spawning local worker %d: %w", i, err)
			}
			procs = append(procs, cmd)
		}
		defer func() {
			for _, p := range procs {
				p.Process.Kill()
				p.Wait()
			}
		}()
	}
	if *killAfter > 0 {
		victim := procs[0]
		timer := time.AfterFunc(*killAfter, func() {
			logf("dist: fault injection: killing worker pid %d", victim.Process.Pid)
			victim.Process.Kill()
		})
		defer timer.Stop()
	}

	sched := loadgen.NewSchedule(*seed, distVal, *rate, *duration)
	fmt.Printf("schedule: %d arrivals over %v at %g/s (%s, seed %d), digest %s\n",
		len(sched.Offsets), *duration, *rate, distVal, *seed, sched.Digest())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	stopProgress := startTimelineProgress("fleet", *window, coord.FleetTimeline)
	report, err := coord.Run(ctx, job, sched)
	stopProgress()
	if err != nil {
		return err
	}

	fmt.Println("\nper-worker breakdown:")
	fmt.Println("  shard | worker       | completed | failed |   p50 ms |   p95 ms | digest")
	fmt.Println("  ------+--------------+-----------+--------+----------+----------+-----------------")
	for _, s := range report.Shards {
		fmt.Printf("  %5d | %-12s | %9d | %6d | %8s | %8s | %s\n",
			s.Shard, s.Worker, s.Result.Completed, s.Result.Failed,
			ms(s.Result.Hist.Quantile(0.50)), ms(s.Result.Hist.Quantile(0.95)), s.Result.Digest())
	}
	merged := report.Merged
	st := coord.Stats()
	fmt.Printf("\nmerged: offered %d, completed %d (%d warmup discarded), failed %d, digest %s\n",
		merged.Offered, merged.Completed, merged.Warmup, merged.Failed, merged.Digest())
	fmt.Printf("fleet: %d joined, %d lost, %d shards reassigned, %d duplicate results dropped\n",
		report.WorkersJoined, report.WorkersLost, report.Reassigned, st.DuplicateAcked)
	fmt.Printf("protocol: %d frames / %d bytes sent, %d frames / %d bytes received\n",
		st.FramesSent, st.BytesSent, st.FramesRecv, st.BytesRecv)
	if len(merged.Errors) > 0 {
		classes := make([]string, 0, len(merged.Errors))
		for c := range merged.Errors {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			fmt.Printf("error[%s]: %d\n", c, merged.Errors[c])
		}
	}

	if *timelinePath != "" {
		if err := writeTimelineArtifacts(merged.Timeline, *timelinePath); err != nil {
			return err
		}
	}

	if !*simulate {
		// The Table-2-style row: measured quantiles next to the modeled
		// prediction for the same grid cell, as `pqbench live` renders.
		campaign, err := harness.RunCampaign(harness.CampaignOptions{
			KEM: *kemName, Sig: *sigName, Link: harness.ScenarioTestbed,
			Buffer: tls13.BufferImmediate, Samples: 5, Resume: *resume,
			Timing: harness.TimingModel,
		})
		if err != nil {
			return err
		}
		row := harness.LiveRow{
			KEM: *kemName, Sig: *sigName, Resumed: *resume,
			HSRate:    merged.Rate(*warmup),
			P50:       merged.Hist.Quantile(0.50),
			P95:       merged.Hist.Quantile(0.95),
			P99:       merged.Hist.Quantile(0.99),
			Completed: merged.Completed,
			Failed:    merged.Failed,
			Modeled:   campaign.TotalMedian,
		}
		if err := harness.RenderLive(os.Stdout, []harness.LiveRow{row}); err != nil {
			return err
		}
	}

	if *killAfter > 0 && report.Reassigned == 0 {
		return errors.New("dist-coordinator: -kill-worker-after fired but no shard was reassigned")
	}

	if *verify {
		// The determinism bar: the identical plan, split the identical
		// number of ways, run in this one process — every deterministic
		// field must match the distributed merge exactly.
		nshards := *workers
		if n := len(sched.Offsets); nshards > n {
			nshards = n
		}
		ref, err := loadgen.RunWorkers(loadgen.Options{
			Schedule: sched, Simulate: true, Warmup: *warmup, MaxConcurrent: *conns,
			WindowInterval: *window,
		}, nshards)
		if err != nil {
			return err
		}
		if got, want := merged.Digest(), ref.Digest(); got != want {
			return fmt.Errorf("dist-coordinator: VERIFY FAILED: merged digest %s != single-process %s", got, want)
		}
		if merged.Offered != ref.Offered || merged.Started != ref.Started ||
			merged.Completed != ref.Completed || merged.Failed != ref.Failed ||
			merged.Warmup != ref.Warmup {
			return fmt.Errorf("dist-coordinator: VERIFY FAILED: counters diverge: merged %+v, single-process %+v", merged, ref)
		}
		for _, q := range []float64{0.50, 0.95, 0.99} {
			if m, r := merged.Hist.Quantile(q), ref.Hist.Quantile(q); m != r {
				return fmt.Errorf("dist-coordinator: VERIFY FAILED: p%.0f %v != single-process %v", q*100, m, r)
			}
		}
		if *window > 0 {
			// Window-level determinism: the fleet's merged timeline must be
			// byte-identical to the one the unsplit single-process run built.
			if merged.Timeline == nil || ref.Timeline == nil {
				return errors.New("dist-coordinator: VERIFY FAILED: -window set but a timeline is missing")
			}
			if got, want := merged.Timeline.Digest(), ref.Timeline.Digest(); got != want {
				return fmt.Errorf("dist-coordinator: VERIFY FAILED: merged timeline digest %s != single-process %s", got, want)
			}
			fmt.Printf("verify: timeline digest %s equals single-process (window %v, %d windows)\n",
				merged.Timeline.Digest(), *window, len(merged.Timeline.Windows()))
		}
		fmt.Printf("verify: PASS — distributed digest %s equals single-process digest (counters and p50/p95/p99 exact)\n", merged.Digest())
	}

	// Graceful end of session: closing the coordinator aborts the workers,
	// which exit cleanly; reap the local ones before returning (the deferred
	// cleanup then finds nothing left to kill).
	coord.Close()
	for _, p := range procs {
		p.Wait()
	}
	return nil
}

// runDistWorker is the `pqbench dist-worker` subcommand: one load-generation
// worker that registers with a coordinator, executes every shard it is
// assigned, streams results back, and drains gracefully on SIGINT or a
// coordinator abort.
func runDistWorker(args []string) error {
	fs := flag.NewFlagSet("dist-worker", flag.ExitOnError)
	coordinator := fs.String("coordinator", "", "coordinator address (required)")
	name := fs.String("name", "", "worker name in coordinator logs and reports")
	attempts := fs.Int("connect-attempts", 5, "bounded connect retries (backoff doubles between attempts)")
	backoff := fs.Duration("connect-backoff", 250*time.Millisecond, "initial connect retry backoff")
	hbInterval := fs.Duration("heartbeat-interval", time.Second, "liveness frame cadence (keep well under the coordinator's -heartbeat-timeout)")
	metrics := fs.String("metrics", "", "serve Prometheus /metrics on this address")
	fs.Parse(args)
	if *coordinator == "" {
		return errors.New("dist-worker: -coordinator is required")
	}

	reg := obs.NewRegistry()
	if *metrics != "" {
		mln, err := net.Listen("tcp", *metrics)
		if err != nil {
			return err
		}
		defer mln.Close()
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		go http.Serve(mln, mux)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	err := dist.RunWorker(ctx, dist.WorkerOptions{
		Coordinator:       *coordinator,
		Name:              *name,
		ConnectAttempts:   *attempts,
		ConnectBackoff:    *backoff,
		HeartbeatInterval: *hbInterval,
		Registry:          reg,
		Logf:              func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) },
	})
	if errors.Is(err, dist.ErrAborted) {
		// The coordinator ended the session (run complete or draining):
		// this worker's job is done.
		return nil
	}
	return err
}
