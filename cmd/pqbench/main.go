// Command pqbench regenerates the paper's tables and figures. Subcommands
// follow the artifact's experiment naming (Appendix B):
//
//	pqbench all-kem                  Table 2a (KAs with rsa:2048)
//	pqbench all-sig                  Table 2b (SAs with X25519)
//	pqbench deviation -buffer=...    Figure 3a (default) / 3b (immediate)
//	pqbench improvement              Figure 3c (optimized vs default)
//	pqbench whitebox                 Table 3 (CPU profile)
//	pqbench all-kem-scenarios        Table 4a (KAs across emulations)
//	pqbench all-sig-scenarios        Table 4b (SAs across emulations)
//	pqbench rank                     Figure 4 (log-scaled ranking)
//	pqbench attack                   Section 5.5 (amplification/asymmetry)
//	pqbench list                     registered suites
//
// Every campaign subcommand accepts -workers N to fan samples across a
// worker pool (default: GOMAXPROCS; -workers 1 runs sequentially) and
// -timing model|real to pick between the deterministic virtual compute
// clock and measured wall time (real timing forces a single worker).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"pqtls/internal/harness"
	"pqtls/internal/kem"
	"pqtls/internal/netsim"
	"pqtls/internal/nettap"
	"pqtls/internal/perf"
	"pqtls/internal/sig"
	"pqtls/internal/tls13"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	if cmd == "live" {
		// live measures real wall-clock handshakes and takes its own flag
		// set (rate, duration, warmup, ...) — see live.go.
		if err := runLive(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "pqbench:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "saturate" {
		// saturate sweeps accept-shard counts against an escalating offered
		// rate to find the host's handshake ceiling — see saturate.go.
		if err := runSaturate(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "pqbench:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "dist-coordinator" {
		// dist-coordinator partitions one arrival plan across dist-worker
		// processes and merges their results bucket-exactly — see dist.go.
		if err := runDistCoordinator(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "pqbench:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "dist-worker" {
		// dist-worker registers with a coordinator and executes assigned
		// load-generation shards — see dist.go.
		if err := runDistWorker(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "pqbench:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "microbench" {
		// microbench runs the kernel inventory via testing.Benchmark and
		// emits machine-readable BENCH_*.json — see microbench.go.
		if err := runMicrobench(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "pqbench:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "benchgate" {
		// benchgate compares two BENCH_*.json files and fails on
		// regression — see microbench.go.
		if err := runBenchGate(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "pqbench:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "timeline" {
		// timeline renders a windowed-telemetry JSONL artifact written by
		// live/saturate/dist-coordinator -timeline — see timeline.go.
		if err := runTimeline(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "pqbench:", err)
			os.Exit(1)
		}
		return
	}
	if cmd == "phases" {
		// phases traces one grid cell's handshake span tree — own flag set
		// (ka, sa, buffer, live, ...) — see phases.go.
		if err := runPhases(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "pqbench:", err)
			os.Exit(1)
		}
		return
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	samples := fs.Int("samples", 9, "handshakes per suite")
	buffer := fs.String("buffer", "immediate", "server buffering: default|immediate")
	workers := fs.Int("workers", 0, "parallel campaign workers (0 = GOMAXPROCS, 1 = sequential)")
	timing := fs.String("timing", "model", "compute timing: model (deterministic) | real (measured, single worker)")
	csvPath := fs.String("csv", "", "also write results as CSV (latencies.csv layout) to this file")
	fs.Parse(os.Args[2:])
	csvFile = *csvPath

	policy := tls13.BufferImmediate
	if *buffer == "default" {
		policy = tls13.BufferDefault
	}
	cfg := harness.SweepConfig{Samples: *samples, Buffer: policy, Workers: *workers}
	switch *timing {
	case "model":
		cfg.Timing = harness.TimingModel
	case "real":
		cfg.Timing = harness.TimingReal
	default:
		fmt.Fprintf(os.Stderr, "pqbench: unknown -timing %q (want model or real)\n", *timing)
		os.Exit(2)
	}

	start := time.Now()
	var err error
	switch cmd {
	case "all-kem":
		err = runTable2a(cfg)
	case "all-sig":
		err = runTable2b(cfg)
	case "deviation":
		err = runDeviation(cfg)
	case "improvement":
		err = runImprovement(cfg)
	case "whitebox":
		err = runWhitebox(cfg)
	case "all-kem-scenarios":
		err = runScenarios(cfg, true)
	case "all-sig-scenarios":
		err = runScenarios(cfg, false)
	case "rank":
		err = runRank(cfg)
	case "attack":
		err = runAttack(cfg)
	case "cwnd":
		err = runCWND(cfg)
	case "all-sphincs":
		err = runAllSphincs(cfg)
	case "hrr":
		err = runHRR(cfg)
	case "chains":
		err = runChains(cfg)
	case "resumption":
		err = runResumption(cfg)
	case "capture":
		err = runCapture(fs.Args())
	case "list":
		runList()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pqbench:", err)
		os.Exit(1)
	}
	if isCampaign(cmd) {
		// Wall clock goes to stderr so stdout stays byte-identical across
		// worker counts (compare runs to see the parallel speedup).
		fmt.Fprintf(os.Stderr, "pqbench: %s finished in %s (workers=%d, timing=%s)\n",
			cmd, time.Since(start).Round(time.Millisecond), effectiveWorkers(cfg), *timing)
	}
}

// isCampaign reports whether cmd runs handshake campaigns (and so should
// report wall clock); list and capture are excluded.
func isCampaign(cmd string) bool {
	switch cmd {
	case "list", "capture":
		return false
	}
	return true
}

// effectiveWorkers resolves the worker count the campaigns actually used.
func effectiveWorkers(cfg harness.SweepConfig) int {
	if cfg.Timing == harness.TimingReal {
		return 1
	}
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return harness.DefaultWorkers()
}

// csvFile, when non-empty, receives a CSV copy of table-shaped results.
var csvFile string

// writeCSV writes rows via emit to csvFile if requested.
func writeCSV(emit func(w io.Writer) error) error {
	if csvFile == "" {
		return nil
	}
	f, err := os.Create(csvFile)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := emit(f); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "pqbench: CSV written to", csvFile)
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pqbench <command> [-samples N] [-buffer default|immediate] [-workers N] [-timing model|real]

commands: all-kem all-sig deviation improvement whitebox
          all-kem-scenarios all-sig-scenarios rank attack
          cwnd all-sphincs hrr chains resumption capture list

live:       real-socket load test over loopback (own flags; pqbench live -h)
saturate:   sharded-accept scaling sweep to the host's handshake ceiling (own flags; pqbench saturate -h)
dist-coordinator: split one load plan across dist-worker processes, merge bucket-exactly (own flags)
dist-worker: load-generation worker driven by a dist-coordinator (own flags)
phases:     per-phase handshake breakdown with span traces (own flags; pqbench phases -h)
timeline:   render a windowed-telemetry JSONL artifact as a table (pqbench timeline -h)
microbench: kernel ns/op + allocs/op to BENCH_*.json (own flags; pqbench microbench -h)
benchgate:  compare two BENCH_*.json, fail on regression (own flags; pqbench benchgate -h)`)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

func runTable2a(cfg harness.SweepConfig) error {
	results, err := harness.RunTable2a(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Table 2a: KAs combined with rsa:2048 as SA")
	if err := harness.RenderTable2(os.Stdout, results, true); err != nil {
		return err
	}
	return writeCSV(func(w io.Writer) error { return harness.WriteLatenciesCSV(w, results) })
}

func runTable2b(cfg harness.SweepConfig) error {
	results, err := harness.RunTable2b(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Table 2b: SAs combined with x25519 as KA")
	if err := harness.RenderTable2(os.Stdout, results, false); err != nil {
		return err
	}
	return writeCSV(func(w io.Writer) error { return harness.WriteLatenciesCSV(w, results) })
}

func runDeviation(cfg harness.SweepConfig) error {
	figure := "3b (optimized OpenSSL behavior)"
	if cfg.Buffer == tls13.BufferDefault {
		figure = "3a (default OpenSSL behavior)"
	}
	devs, err := harness.RunDeviation(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Figure %s: deviation E(k,s)-M(k,s); positive = faster than predicted\n", figure)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Level\tKA\tSA\tExpected(ms)\tMeasured(ms)\tDeviation(ms)")
	for _, d := range devs {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\n",
			d.Level, d.KEM, d.Sig, ms(d.Expected), ms(d.Measured), ms(d.Deviation))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return writeCSV(func(w io.Writer) error { return harness.WriteDeviationsCSV(w, devs) })
}

func runImprovement(cfg harness.SweepConfig) error {
	imps, err := harness.RunBufferImprovement(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Figure 3c: latency improvement of the optimized buffering")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Level\tKA\tSA\tDefault(ms)\tOptimized(ms)\tGain(ms)")
	for _, im := range imps {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\n",
			im.Level, im.KEM, im.Sig, ms(im.Default), ms(im.Opt), ms(im.Gain))
	}
	return w.Flush()
}

func runWhitebox(cfg harness.SweepConfig) error {
	results, err := harness.RunTable3(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Table 3: white-box measurements")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "KA\tSA\tHS(1/s)\tCPU srv(ms)\tCPU cli(ms)\tPkts srv\tPkts cli\tServer libs\tClient libs")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%s\t%.0f\t%s\t%s\t%d\t%d\t%s\t%s\n",
			r.KEM, r.Sig, r.HandshakeRate(), ms(r.ServerCPU), ms(r.ClientCPU),
			r.ServerPackets, r.ClientPackets,
			distString(r.ServerProfile), distString(r.ClientProfile))
	}
	return w.Flush()
}

func distString(s perf.Snapshot) string {
	var parts []string
	for _, bs := range s.Distribution() {
		if bs.Share < 0.01 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %.0f%%", bs.Lib, bs.Share*100))
	}
	return strings.Join(parts, " ")
}

func runScenarios(cfg harness.SweepConfig, kems bool) error {
	var rows []harness.ScenarioRow
	var err error
	if kems {
		fmt.Println("Table 4a: KAs combined with rsa:2048, per network scenario (median ms)")
		rows, err = harness.RunScenarios(harness.Table2aKEMs, nil, cfg)
	} else {
		fmt.Println("Table 4b: SAs combined with x25519, per network scenario (median ms)")
		rows, err = harness.RunScenarios(nil, harness.Table4bSigs, cfg)
	}
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	names := []string{}
	for _, sc := range netsim.Scenarios() {
		names = append(names, sc.Name)
	}
	fmt.Fprintf(w, "Algorithm\t%s\n", strings.Join(names, "\t"))
	for _, row := range rows {
		name := row.KEM
		if !kems {
			name = row.Sig
		}
		cells := []string{name}
		for _, sc := range names {
			cells = append(cells, ms(row.Latency[sc]))
		}
		fmt.Fprintln(w, strings.Join(cells, "\t"))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := harness.CheckLossMonotone(rows); err != nil {
		return err
	}
	return writeCSV(func(w io.Writer) error { return harness.WriteScenariosCSV(w, rows) })
}

func runRank(cfg harness.SweepConfig) error {
	kemResults, err := harness.RunTable2a(cfg)
	if err != nil {
		return err
	}
	sigResults, err := harness.RunTable2b(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Figure 4: log-scaled latency ranking [0=fastest .. 10=slowest]")
	fmt.Println("Key agreements:")
	for _, r := range harness.RankFromResults(kemResults, func(r *harness.CampaignResult) string { return r.KEM }) {
		fmt.Printf("  %2d  %-16s %s ms\n", r.Score, r.Name, ms(r.Total))
	}
	fmt.Println("Signature algorithms:")
	for _, r := range harness.RankFromResults(sigResults, func(r *harness.CampaignResult) string { return r.Sig }) {
		fmt.Printf("  %2d  %-18s %s ms\n", r.Score, r.Name, ms(r.Total))
	}
	return nil
}

func runAttack(cfg harness.SweepConfig) error {
	cfg.Buffer = tls13.BufferImmediate
	results, err := harness.RunTable2b(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Section 5.5: attack surface (amplification = server/client bytes)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "KA\tSA\tAmplification\tCPU asymmetry (srv/cli)")
	for _, a := range harness.AttackSurfaceFromResults(results) {
		fmt.Fprintf(w, "%s\t%s\t%.1fx\t%.1fx\n", a.KEM, a.Sig, a.Amplification, a.CPUAsymmetry)
	}
	return w.Flush()
}

func runCWND(cfg harness.SweepConfig) error {
	results, err := harness.RunCWNDSweep(nil, cfg)
	if err != nil {
		return err
	}
	fmt.Println("Initial-CWND tuning sweep at 1s RTT (the conclusion's knob):")
	fmt.Println("median full-handshake latency; RTTs column shows the CWND cliff")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "KA\tSA\tCWND\tMedian(ms)\tRTTs")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%.2f\n", r.KEM, r.Sig, r.CWND, ms(r.Total), r.RTTs)
	}
	return w.Flush()
}

func runAllSphincs(cfg harness.SweepConfig) error {
	results, err := harness.RunAllSphincs(cfg)
	if err != nil {
		return err
	}
	fmt.Println("all-sphincs: fast (f) vs small (s) variants with x25519")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Variant\tPartA(ms)\tPartB(ms)\tServer(B)\t#Total(60s)")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%d\n",
			r.Sig, ms(r.PartAMedian), ms(r.PartBMedian), r.ServerBytes, r.Handshakes60s)
	}
	return w.Flush()
}

func runHRR(cfg harness.SweepConfig) error {
	fmt.Println("HelloRetryRequest (2-RTT fallback) penalty — what the paper's")
	fmt.Println("'fallback never occurred' configuration avoided")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "KA\t"+"Scenario\t"+"Direct(ms)\t"+"Fallback(ms)\t"+"Penalty(ms)")
	for _, link := range []netsim.LinkConfig{harness.ScenarioTestbed, netsim.Scenario5G} {
		results, err := harness.RunHRRComparison(nil, link, cfg)
		if err != nil {
			return err
		}
		for _, r := range results {
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\n",
				r.KEM, r.Scenario, ms(r.Direct), ms(r.Fallback), ms(r.Penalty))
		}
	}
	return w.Flush()
}

func runChains(cfg harness.SweepConfig) error {
	results, err := harness.RunChainDepth(nil, cfg)
	if err != nil {
		return err
	}
	fmt.Println("Certificate-chain depth sweep (x25519 KA): every extra PQ")
	fmt.Println("certificate costs a full public key + signature on the wire")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "SA\tDepth\tMedian(ms)\tServer(B)")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%d\t%s\t%d\n", r.Sig, r.Depth, ms(r.Total), r.ServerBytes)
	}
	return w.Flush()
}

// runCapture records one simulated handshake per suite to libpcap files
// (the artifact publishes PCAPs of its runs). Usage: capture [kem] [sig].
func runCapture(args []string) error {
	kemName, sigName := harness.BaselineKEM, harness.BaselineSig
	if len(args) > 0 {
		kemName = args[0]
	}
	if len(args) > 1 {
		sigName = args[1]
	}
	name := fmt.Sprintf("%s_%s.pcap", kemName, strings.ReplaceAll(sigName, ":", ""))
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	defer f.Close()
	pw, err := nettap.NewPcapWriter(f)
	if err != nil {
		return err
	}
	res, err := harness.RunHandshake(harness.RunOptions{
		KEM: kemName, Sig: sigName, Link: harness.ScenarioTestbed,
		Buffer: tls13.BufferImmediate, Seed: 1, Pcap: pw,
	})
	if err != nil {
		return err
	}
	if pw.Err() != nil {
		return pw.Err()
	}
	fmt.Printf("wrote %s: %d packets, handshake %s ms (evaluate with pqtls-eval)\n",
		name, res.ClientPackets+res.ServerPackets, ms(res.Phases.Total()))
	return nil
}

func runResumption(cfg harness.SweepConfig) error {
	results, err := harness.RunResumptionComparison(cfg)
	if err != nil {
		return err
	}
	fmt.Println("PSK resumption: a resumed handshake skips Certificate +")
	fmt.Println("CertificateVerify, amortizing the PQ authentication cost")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "KA\t"+"SA\t"+"Full(ms)\t"+"Resumed(ms)\t"+"Full srv(B)\t"+"Resumed srv(B)")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\t%d\n",
			r.KEM, r.Sig, ms(r.Full), ms(r.Resumed), r.FullBytes, r.ResumeBytes)
	}
	return w.Flush()
}

func runList() {
	fmt.Println("Key agreements (Table 2a):")
	names := kem.Names()
	sort.Strings(names)
	for _, n := range names {
		k, _ := kem.ByName(n)
		fmt.Printf("  %-16s level %d  pk %5dB  ct %5dB\n", n, k.Level(), k.PublicKeySize(), k.CiphertextSize())
	}
	fmt.Println("Signature algorithms (Tables 2b/4b):")
	for _, n := range sig.Names() {
		s, _ := sig.ByName(n)
		fmt.Printf("  %-20s level %d  pk %5dB  sig %5dB\n", n, s.Level(), s.PublicKeySize(), s.SignatureSize())
	}
}
