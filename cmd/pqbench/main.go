// Command pqbench regenerates the paper's tables and figures. Subcommands
// follow the artifact's experiment naming (Appendix B):
//
//	pqbench all-kem                  Table 2a (KAs with rsa:2048)
//	pqbench all-sig                  Table 2b (SAs with X25519)
//	pqbench deviation -buffer=...    Figure 3a (default) / 3b (immediate)
//	pqbench improvement              Figure 3c (optimized vs default)
//	pqbench whitebox                 Table 3 (CPU profile)
//	pqbench all-kem-scenarios        Table 4a (KAs across emulations)
//	pqbench all-sig-scenarios        Table 4b (SAs across emulations)
//	pqbench rank                     Figure 4 (log-scaled ranking)
//	pqbench attack                   Section 5.5 (amplification/asymmetry)
//	pqbench list                     registered suites
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"pqtls/internal/harness"
	"pqtls/internal/kem"
	"pqtls/internal/netsim"
	"pqtls/internal/nettap"
	"pqtls/internal/perf"
	"pqtls/internal/sig"
	"pqtls/internal/tls13"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	samples := fs.Int("samples", 9, "handshakes per suite")
	buffer := fs.String("buffer", "immediate", "server buffering: default|immediate")
	csvPath := fs.String("csv", "", "also write results as CSV (latencies.csv layout) to this file")
	fs.Parse(os.Args[2:])
	csvFile = *csvPath

	policy := tls13.BufferImmediate
	if *buffer == "default" {
		policy = tls13.BufferDefault
	}

	var err error
	switch cmd {
	case "all-kem":
		err = runTable2a(*samples, policy)
	case "all-sig":
		err = runTable2b(*samples, policy)
	case "deviation":
		err = runDeviation(*samples, policy)
	case "improvement":
		err = runImprovement(*samples)
	case "whitebox":
		err = runWhitebox(*samples)
	case "all-kem-scenarios":
		err = runScenarios(*samples, true)
	case "all-sig-scenarios":
		err = runScenarios(*samples, false)
	case "rank":
		err = runRank(*samples, policy)
	case "attack":
		err = runAttack(*samples)
	case "cwnd":
		err = runCWND(*samples)
	case "all-sphincs":
		err = runAllSphincs(*samples)
	case "hrr":
		err = runHRR(*samples)
	case "chains":
		err = runChains(*samples)
	case "resumption":
		err = runResumption(*samples)
	case "capture":
		err = runCapture(fs.Args())
	case "list":
		runList()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pqbench:", err)
		os.Exit(1)
	}
}

// csvFile, when non-empty, receives a CSV copy of table-shaped results.
var csvFile string

// writeCSV writes rows via emit to csvFile if requested.
func writeCSV(emit func(w io.Writer) error) error {
	if csvFile == "" {
		return nil
	}
	f, err := os.Create(csvFile)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := emit(f); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "pqbench: CSV written to", csvFile)
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pqbench <command> [-samples N] [-buffer default|immediate]

commands: all-kem all-sig deviation improvement whitebox
          all-kem-scenarios all-sig-scenarios rank attack
          cwnd all-sphincs hrr chains resumption capture list`)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

func runTable2a(samples int, policy tls13.BufferPolicy) error {
	results, err := harness.RunTable2a(samples, policy)
	if err != nil {
		return err
	}
	fmt.Println("Table 2a: KAs combined with rsa:2048 as SA")
	printTable2(results, true)
	return writeCSV(func(w io.Writer) error { return harness.WriteLatenciesCSV(w, results) })
}

func runTable2b(samples int, policy tls13.BufferPolicy) error {
	results, err := harness.RunTable2b(samples, policy)
	if err != nil {
		return err
	}
	fmt.Println("Table 2b: SAs combined with x25519 as KA")
	printTable2(results, false)
	return writeCSV(func(w io.Writer) error { return harness.WriteLatenciesCSV(w, results) })
}

func printTable2(results []*harness.CampaignResult, byKEM bool) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Algorithm\tPartA(ms)\tPartB(ms)\t#Total(60s)\tClient(B)\tServer(B)")
	for _, r := range results {
		name := r.KEM
		if !byKEM {
			name = r.Sig
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%d\t%d\n",
			name, ms(r.PartAMedian), ms(r.PartBMedian), r.Handshakes60s, r.ClientBytes, r.ServerBytes)
	}
	w.Flush()
}

func runDeviation(samples int, policy tls13.BufferPolicy) error {
	figure := "3b (optimized OpenSSL behavior)"
	if policy == tls13.BufferDefault {
		figure = "3a (default OpenSSL behavior)"
	}
	devs, err := harness.RunDeviation(samples, policy)
	if err != nil {
		return err
	}
	fmt.Printf("Figure %s: deviation E(k,s)-M(k,s); positive = faster than predicted\n", figure)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Level\tKA\tSA\tExpected(ms)\tMeasured(ms)\tDeviation(ms)")
	for _, d := range devs {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\n",
			d.Level, d.KEM, d.Sig, ms(d.Expected), ms(d.Measured), ms(d.Deviation))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return writeCSV(func(w io.Writer) error { return harness.WriteDeviationsCSV(w, devs) })
}

func runImprovement(samples int) error {
	imps, err := harness.RunBufferImprovement(samples)
	if err != nil {
		return err
	}
	fmt.Println("Figure 3c: latency improvement of the optimized buffering")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Level\tKA\tSA\tDefault(ms)\tOptimized(ms)\tGain(ms)")
	for _, im := range imps {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\n",
			im.Level, im.KEM, im.Sig, ms(im.Default), ms(im.Opt), ms(im.Gain))
	}
	return w.Flush()
}

func runWhitebox(samples int) error {
	results, err := harness.RunTable3(samples)
	if err != nil {
		return err
	}
	fmt.Println("Table 3: white-box measurements")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "KA\tSA\tHS(1/s)\tCPU srv(ms)\tCPU cli(ms)\tPkts srv\tPkts cli\tServer libs\tClient libs")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%s\t%.0f\t%s\t%s\t%d\t%d\t%s\t%s\n",
			r.KEM, r.Sig, r.HandshakeRate(), ms(r.ServerCPU), ms(r.ClientCPU),
			r.ServerPackets, r.ClientPackets,
			distString(r.ServerProfile), distString(r.ClientProfile))
	}
	return w.Flush()
}

func distString(s perf.Snapshot) string {
	var parts []string
	for _, bs := range s.Distribution() {
		if bs.Share < 0.01 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s %.0f%%", bs.Lib, bs.Share*100))
	}
	return strings.Join(parts, " ")
}

func runScenarios(samples int, kems bool) error {
	var rows []harness.ScenarioRow
	var err error
	if kems {
		fmt.Println("Table 4a: KAs combined with rsa:2048, per network scenario (median ms)")
		rows, err = harness.RunScenarios(harness.Table2aKEMs, nil, samples)
	} else {
		fmt.Println("Table 4b: SAs combined with x25519, per network scenario (median ms)")
		rows, err = harness.RunScenarios(nil, harness.Table4bSigs, samples)
	}
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	names := []string{}
	for _, sc := range netsim.Scenarios() {
		names = append(names, sc.Name)
	}
	fmt.Fprintf(w, "Algorithm\t%s\n", strings.Join(names, "\t"))
	for _, row := range rows {
		name := row.KEM
		if !kems {
			name = row.Sig
		}
		cells := []string{name}
		for _, sc := range names {
			cells = append(cells, ms(row.Latency[sc]))
		}
		fmt.Fprintln(w, strings.Join(cells, "\t"))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return writeCSV(func(w io.Writer) error { return harness.WriteScenariosCSV(w, rows) })
}

func runRank(samples int, policy tls13.BufferPolicy) error {
	kemResults, err := harness.RunTable2a(samples, policy)
	if err != nil {
		return err
	}
	sigResults, err := harness.RunTable2b(samples, policy)
	if err != nil {
		return err
	}
	fmt.Println("Figure 4: log-scaled latency ranking [0=fastest .. 10=slowest]")
	fmt.Println("Key agreements:")
	for _, r := range harness.RankFromResults(kemResults, func(r *harness.CampaignResult) string { return r.KEM }) {
		fmt.Printf("  %2d  %-16s %s ms\n", r.Score, r.Name, ms(r.Total))
	}
	fmt.Println("Signature algorithms:")
	for _, r := range harness.RankFromResults(sigResults, func(r *harness.CampaignResult) string { return r.Sig }) {
		fmt.Printf("  %2d  %-18s %s ms\n", r.Score, r.Name, ms(r.Total))
	}
	return nil
}

func runAttack(samples int) error {
	results, err := harness.RunTable2b(samples, tls13.BufferImmediate)
	if err != nil {
		return err
	}
	fmt.Println("Section 5.5: attack surface (amplification = server/client bytes)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "KA\tSA\tAmplification\tCPU asymmetry (srv/cli)")
	for _, a := range harness.AttackSurfaceFromResults(results) {
		fmt.Fprintf(w, "%s\t%s\t%.1fx\t%.1fx\n", a.KEM, a.Sig, a.Amplification, a.CPUAsymmetry)
	}
	return w.Flush()
}

func runCWND(samples int) error {
	results, err := harness.RunCWNDSweep(nil, samples)
	if err != nil {
		return err
	}
	fmt.Println("Initial-CWND tuning sweep at 1s RTT (the conclusion's knob):")
	fmt.Println("median full-handshake latency; RTTs column shows the CWND cliff")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "KA\tSA\tCWND\tMedian(ms)\tRTTs")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%s\t%d\t%s\t%.2f\n", r.KEM, r.Sig, r.CWND, ms(r.Total), r.RTTs)
	}
	return w.Flush()
}

func runAllSphincs(samples int) error {
	results, err := harness.RunAllSphincs(samples)
	if err != nil {
		return err
	}
	fmt.Println("all-sphincs: fast (f) vs small (s) variants with x25519")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Variant\tPartA(ms)\tPartB(ms)\tServer(B)\t#Total(60s)")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%d\n",
			r.Sig, ms(r.PartAMedian), ms(r.PartBMedian), r.ServerBytes, r.Handshakes60s)
	}
	return w.Flush()
}

func runHRR(samples int) error {
	fmt.Println("HelloRetryRequest (2-RTT fallback) penalty — what the paper's")
	fmt.Println("'fallback never occurred' configuration avoided")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "KA\t"+"Scenario\t"+"Direct(ms)\t"+"Fallback(ms)\t"+"Penalty(ms)")
	for _, link := range []netsim.LinkConfig{harness.ScenarioTestbed, netsim.Scenario5G} {
		results, err := harness.RunHRRComparison(nil, link, samples)
		if err != nil {
			return err
		}
		for _, r := range results {
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\n",
				r.KEM, r.Scenario, ms(r.Direct), ms(r.Fallback), ms(r.Penalty))
		}
	}
	return w.Flush()
}

func runChains(samples int) error {
	results, err := harness.RunChainDepth(nil, samples)
	if err != nil {
		return err
	}
	fmt.Println("Certificate-chain depth sweep (x25519 KA): every extra PQ")
	fmt.Println("certificate costs a full public key + signature on the wire")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "SA\tDepth\tMedian(ms)\tServer(B)")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%d\t%s\t%d\n", r.Sig, r.Depth, ms(r.Total), r.ServerBytes)
	}
	return w.Flush()
}

// runCapture records one simulated handshake per suite to libpcap files
// (the artifact publishes PCAPs of its runs). Usage: capture [kem] [sig].
func runCapture(args []string) error {
	kemName, sigName := harness.BaselineKEM, harness.BaselineSig
	if len(args) > 0 {
		kemName = args[0]
	}
	if len(args) > 1 {
		sigName = args[1]
	}
	name := fmt.Sprintf("%s_%s.pcap", kemName, strings.ReplaceAll(sigName, ":", ""))
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	defer f.Close()
	pw, err := nettap.NewPcapWriter(f)
	if err != nil {
		return err
	}
	res, err := harness.RunHandshake(harness.RunOptions{
		KEM: kemName, Sig: sigName, Link: harness.ScenarioTestbed,
		Buffer: tls13.BufferImmediate, Seed: 1, Pcap: pw,
	})
	if err != nil {
		return err
	}
	if pw.Err() != nil {
		return pw.Err()
	}
	fmt.Printf("wrote %s: %d packets, handshake %s ms (evaluate with pqtls-eval)\n",
		name, res.ClientPackets+res.ServerPackets, ms(res.Phases.Total()))
	return nil
}

func runResumption(samples int) error {
	results, err := harness.RunResumptionComparison(samples)
	if err != nil {
		return err
	}
	fmt.Println("PSK resumption: a resumed handshake skips Certificate +")
	fmt.Println("CertificateVerify, amortizing the PQ authentication cost")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "KA\t"+"SA\t"+"Full(ms)\t"+"Resumed(ms)\t"+"Full srv(B)\t"+"Resumed srv(B)")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\t%d\n",
			r.KEM, r.Sig, ms(r.Full), ms(r.Resumed), r.FullBytes, r.ResumeBytes)
	}
	return w.Flush()
}

func runList() {
	fmt.Println("Key agreements (Table 2a):")
	names := kem.Names()
	sort.Strings(names)
	for _, n := range names {
		k, _ := kem.ByName(n)
		fmt.Printf("  %-16s level %d  pk %5dB  ct %5dB\n", n, k.Level(), k.PublicKeySize(), k.CiphertextSize())
	}
	fmt.Println("Signature algorithms (Tables 2b/4b):")
	for _, n := range sig.Names() {
		s, _ := sig.ByName(n)
		fmt.Printf("  %-20s level %d  pk %5dB  sig %5dB\n", n, s.Level(), s.PublicKeySize(), s.SignatureSize())
	}
}
