// Command pqtls-client is the reproduction's analog of `openssl s_client`:
// it performs PQ TLS 1.3 handshakes against cmd/pqtls-server over real TCP
// and reports per-handshake latency (repeat with -n for a quick benchmark).
//
//	pqtls-client -connect 127.0.0.1:8443 -kem kyber512 -sig dilithium2 -root root.cert -n 10
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sort"
	"time"

	"pqtls"
	"pqtls/internal/pki"
)

func main() {
	addr := flag.String("connect", "127.0.0.1:8443", "server address")
	kemName := flag.String("kem", "x25519", "key agreement")
	sigName := flag.String("sig", "rsa:2048", "expected certificate algorithm")
	rootFile := flag.String("root", "root.cert", "trusted root certificate file")
	n := flag.Int("n", 1, "number of sequential handshakes")
	flag.Parse()

	rootBytes, err := os.ReadFile(*rootFile)
	if err != nil {
		log.Fatal(err)
	}
	root, err := pki.Unmarshal(rootBytes)
	if err != nil {
		log.Fatal(err)
	}
	cfg := &pqtls.Config{
		KEMName: *kemName, SigName: *sigName, ServerName: "server.example",
		Roots: pqtls.NewCertPool(root),
	}

	var latencies []time.Duration
	for i := 0; i < *n; i++ {
		conn, err := net.Dial("tcp", *addr)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		cli, err := pqtls.ClientHandshake(conn, cfg)
		if err != nil {
			log.Fatalf("handshake %d: %v", i, err)
		}
		d := time.Since(start)
		latencies = append(latencies, d)
		conn.Close()
		if i == 0 {
			fmt.Printf("connected: %s certificate for %q\n",
				cli.ServerCert.Algorithm, cli.ServerCert.Subject)
		}
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	fmt.Printf("%d handshakes: median %v, min %v, max %v\n",
		*n, latencies[len(latencies)/2], latencies[0], latencies[len(latencies)-1])
}
