// Command pqtls-client is the reproduction's analog of `openssl s_client`:
// it performs PQ TLS 1.3 handshakes against cmd/pqtls-server over real TCP
// and reports latency quantiles (repeat with -n for a quick benchmark).
// With -resume, the first handshake is full and collects the server's
// NewSessionTicket; every following handshake resumes from it over a fresh
// TCP connection, exercising the shared ticket store end to end.
//
//	pqtls-client -connect 127.0.0.1:8443 -kem kyber512 -sig dilithium2 -root root.cert -n 10
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"pqtls"
	"pqtls/internal/obs"
	"pqtls/internal/pki"
	"pqtls/internal/stats"
)

func main() {
	addr := flag.String("connect", "127.0.0.1:8443", "server address")
	kemName := flag.String("kem", "x25519", "key agreement")
	sigName := flag.String("sig", "rsa:2048", "expected certificate algorithm")
	rootFile := flag.String("root", "root.cert", "trusted root certificate file")
	n := flag.Int("n", 1, "number of sequential handshakes")
	resume := flag.Bool("resume", false, "resume handshakes 2..n from the first handshake's session ticket")
	trace := flag.Bool("trace", false, "record per-phase spans and print a p50/p95 phase breakdown")
	flag.Parse()

	rootBytes, err := os.ReadFile(*rootFile)
	if err != nil {
		log.Fatal(err)
	}
	root, err := pki.Unmarshal(rootBytes)
	if err != nil {
		log.Fatal(err)
	}
	base := pqtls.Config{
		KEMName: *kemName, SigName: *sigName, ServerName: "server.example",
		Roots: pqtls.NewCertPool(root),
	}

	var latencies []time.Duration
	var session *pqtls.Session
	col := &obs.Collector{}
	resumed := 0
	for i := 0; i < *n; i++ {
		conn, err := net.Dial("tcp", *addr)
		if err != nil {
			log.Fatal(err)
		}
		cfg := base // fresh copy per connection
		if *resume && session != nil {
			cfg.Session = session
		}
		var tracer *obs.Tracer
		if *trace {
			tracer = obs.NewTracer(obs.Meta{
				Endpoint: "client", KEM: *kemName, Sig: *sigName,
				Sample: i, Resumed: cfg.Session != nil,
			}, nil)
			cfg.Hooks = tracer
		}
		start := time.Now()
		cli, err := pqtls.ClientHandshake(conn, &cfg)
		if err != nil {
			log.Fatalf("handshake %d: %v", i, err)
		}
		latencies = append(latencies, time.Since(start))
		col.Add(tracer) // nil-safe when -trace is off
		if cfg.Session != nil {
			resumed++
		}
		if *resume && session == nil {
			// The server issues a NewSessionTicket right after every full
			// handshake; read that flight and keep the session.
			rec, err := pqtls.ReadRecord(conn)
			if err != nil {
				log.Fatalf("reading NewSessionTicket: %v", err)
			}
			session, err = cli.ProcessTicket([]pqtls.Record{rec})
			if err != nil {
				log.Fatalf("processing NewSessionTicket: %v", err)
			}
		}
		conn.Close()
		if i == 0 {
			fmt.Printf("connected: %s certificate for %q\n",
				cli.ServerCert.Algorithm, cli.ServerCert.Subject)
		}
	}
	mn, mx := stats.MinMax(latencies)
	qs := stats.Quantiles(latencies, 0.50, 0.95, 0.99)
	fmt.Printf("%d handshakes (%d resumed): p50 %v, p95 %v, p99 %v, min %v, max %v\n",
		*n, resumed, qs[0], qs[1], qs[2], mn, mx)
	if *trace {
		fmt.Println("phase breakdown (wall clock, tls13 state-machine spans):")
		if err := obs.WritePhaseTable(os.Stdout, obs.AggregatePhases(col.Traces())); err != nil {
			log.Fatal(err)
		}
	}
}
