#!/bin/sh
# Streaming-telemetry smoke: a 2-worker distributed Simulate run under the
# race detector with windowed telemetry on. -verify asserts the merged
# fleet timeline is byte-identical (digest-exact) to the single-process run
# of the same plan; this script additionally checks the written artifacts —
# the CSV schema matches obs.TimelineCSVHeader, the JSONL round-trips
# through `pqbench timeline` (which re-verifies the header digest), and the
# rendered totals agree with the merged run counters.
set -eu

cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

go build -race -o "$tmpdir/pqbench-race" ./cmd/pqbench

echo "==> timeline smoke: 2-worker dist run, merged timeline must equal single-process"
"$tmpdir/pqbench-race" dist-coordinator -simulate -verify -workers 2 -workers-local 2 \
    -rate 80 -duration 1s -start-delay 50ms -heartbeat-timeout 2s \
    -window 100ms -timeline "$tmpdir/timeline_dist" | tee "$tmpdir/run.txt"
grep -q "verify: timeline digest" "$tmpdir/run.txt"

echo "==> timeline smoke: CSV artifact schema"
want_header="index,start_ms,started,completed,failed,resumed,warmup,inflight,hs_s,p50_us,p95_us"
got_header=$(head -n 1 "$tmpdir/timeline_dist.csv")
if [ "$got_header" != "$want_header" ]; then
    echo "timeline smoke: CSV header mismatch:"
    echo "  got:  $got_header"
    echo "  want: $want_header"
    exit 1
fi
# Every data row must have exactly the header's column count.
awk -F, -v cols="$(echo "$want_header" | awk -F, '{print NF}')" \
    'NR > 1 && NF != cols { print "bad column count at line " NR ": " $0; exit 1 }' \
    "$tmpdir/timeline_dist.csv"

echo "==> timeline smoke: JSONL round-trip through pqbench timeline (digest re-verified)"
"$tmpdir/pqbench-race" timeline "$tmpdir/timeline_dist.jsonl" | tee "$tmpdir/render.txt"
merged_completed=$(sed -n 's/^merged: offered [0-9]*, completed \([0-9]*\).*/\1/p' "$tmpdir/run.txt")
rendered_completed=$(sed -n 's/^totals: .*started [0-9]*, completed \([0-9]*\).*/\1/p' "$tmpdir/render.txt")
if [ -z "$merged_completed" ] || [ "$merged_completed" != "$rendered_completed" ]; then
    echo "timeline smoke: artifact totals ($rendered_completed) != merged run completed ($merged_completed)"
    exit 1
fi

echo "timeline-smoke OK: merged timeline digest-exact vs single-process, artifacts schema-valid"
