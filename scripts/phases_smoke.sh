#!/bin/sh
# Observability smoke: the `pqbench phases` breakdown for a classical and a
# PQ cell (with JSONL schema self-validation and the flight-wait phase
# present), then a real pqtls-server scraped over HTTP — /healthz answers,
# one pqtls-client handshake lands in /metrics, and every headline metric
# family is exposed in Prometheus text format.
set -eu

cd "$(dirname "$0")/.."

tmpdir=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap cleanup EXIT

go build -o "$tmpdir/pqbench" ./cmd/pqbench
go build -o "$tmpdir/pqtls-server" ./cmd/pqtls-server
go build -o "$tmpdir/pqtls-client" ./cmd/pqtls-client

echo "==> phases: classical cell (x25519/ed25519, both buffer policies)"
"$tmpdir/pqbench" phases -ka x25519 -sa ed25519 -samples 5 -out "$tmpdir/results" | tee "$tmpdir/classical.txt"
grep -q "trace schema ok" "$tmpdir/classical.txt"
grep -q "flight-wait" "$tmpdir/classical.txt"

echo "==> phases: PQ cell (kyber768/dilithium3, both buffer policies)"
"$tmpdir/pqbench" phases -ka kyber768 -sa dilithium3 -samples 5 -out "$tmpdir/results" | tee "$tmpdir/pq.txt"
grep -q "trace schema ok" "$tmpdir/pq.txt"
grep -q "flight-wait" "$tmpdir/pq.txt"

ls "$tmpdir/results"/phases_x25519_ed25519_default.jsonl \
   "$tmpdir/results"/phases_x25519_ed25519_default.csv \
   "$tmpdir/results"/phases_kyber768_dilithium3_immediate.jsonl >/dev/null

echo "==> metrics: pqtls-server with /metrics + /healthz"
LISTEN=127.0.0.1:18455
METRICS=127.0.0.1:18456
"$tmpdir/pqtls-server" -listen "$LISTEN" -metrics "$METRICS" \
    -kem kyber768 -sig dilithium3 -root "$tmpdir/root.cert" \
    >"$tmpdir/server.log" 2>&1 &
server_pid=$!

# Wait for /healthz (the metrics listener comes up with the TLS listener).
ok=""
for _ in $(seq 1 50); do
    if curl -fsS "http://$METRICS/healthz" >/dev/null 2>&1; then ok=1; break; fi
    kill -0 "$server_pid" 2>/dev/null || { echo "server died:"; cat "$tmpdir/server.log"; exit 1; }
    sleep 0.1
done
[ -n "$ok" ] || { echo "healthz never came up"; cat "$tmpdir/server.log"; exit 1; }

"$tmpdir/pqtls-client" -connect "$LISTEN" -kem kyber768 -sig dilithium3 \
    -root "$tmpdir/root.cert" -n 1 -trace | tee "$tmpdir/client.txt"
grep -q "phase breakdown" "$tmpdir/client.txt"

curl -fsS "http://$METRICS/metrics" >"$tmpdir/metrics.txt"
for fam in pqtls_handshakes_total pqtls_inflight_connections pqtls_draining \
           pqtls_tickets_issued_total pqtls_handshake_duration_seconds \
           pqtls_handshake_phase_seconds pqtls_pubkey_ops_total; do
    grep -q "^# TYPE $fam " "$tmpdir/metrics.txt" || {
        echo "metric family $fam missing from /metrics"; cat "$tmpdir/metrics.txt"; exit 1; }
done
grep -q '^pqtls_handshakes_total{result="ok"} 1$' "$tmpdir/metrics.txt" || {
    echo "handshake did not land in pqtls_handshakes_total"; cat "$tmpdir/metrics.txt"; exit 1; }

kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "phases-smoke OK"
