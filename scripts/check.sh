#!/bin/sh
# CI gate: everything `make check` runs, as a single portable script for
# environments without make. Fails on the first broken step.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
fmt_out=$(gofmt -l .)
if [ -n "$fmt_out" ]; then
    echo "gofmt needed on:"
    echo "$fmt_out"
    exit 1
fi

echo "==> go vet"
go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
    echo "==> staticcheck"
    staticcheck ./...
else
    echo "==> staticcheck not installed; skipping"
fi

echo "==> go build"
go build ./...

echo "==> go test"
go test ./...

echo "==> go test -race"
go test -race ./...

echo "==> benchmark regression gate (short mode: allocs/op only)"
sh scripts/bench_gate.sh -short

echo "==> fuzz smoke (${FUZZTIME:-5s} per target)"
for target in FuzzClientHelloParse FuzzServerHelloParse FuzzRecordDeprotect; do
    go test ./internal/tls13 -run '^$' -fuzz "$target" -fuzztime "${FUZZTIME:-5s}"
done

echo "==> live smoke: loopback handshakes under -race, schedule digest reproducible"
livedir=$(mktemp -d)
go build -race -o "$livedir/pqbench-race" ./cmd/pqbench
d1=$("$livedir/pqbench-race" live -kem kyber768 -sig dilithium3 -rate 50 -duration 1s |
    tee /dev/stderr | sed -n 's/.*digest \([0-9a-f]*\).*/\1/p')
d2=$("$livedir/pqbench-race" live -kem kyber768 -sig dilithium3 -rate 50 -duration 1s |
    sed -n 's/.*digest \([0-9a-f]*\).*/\1/p')
if [ -z "$d1" ] || [ "$d1" != "$d2" ]; then
    rm -rf "$livedir"
    echo "live smoke: schedule digest not reproducible: '$d1' vs '$d2'"
    exit 1
fi

echo "==> clientpath smoke: batched verification + encapsulation under -race, digest matches unpooled"
c1=$("$livedir/pqbench-race" live -kem kyber768 -sig dilithium3 -rate 50 -duration 1s |
    sed -n 's/.*digest \([0-9a-f]*\).*/\1/p')
cout=$("$livedir/pqbench-race" live -kem kyber768 -sig dilithium3 -rate 50 -duration 1s \
    -verify-workers 2 -encap-batch 16 | tee /dev/stderr)
c2=$(echo "$cout" | sed -n 's/.*digest \([0-9a-f]*\).*/\1/p')
if [ -z "$c1" ] || [ "$c1" != "$c2" ]; then
    rm -rf "$livedir"
    echo "clientpath smoke: batched run changed the schedule digest: '$c1' vs '$c2'"
    exit 1
fi
if ! echo "$cout" | grep -q '^verify pool: 2 workers, [1-9]'; then
    rm -rf "$livedir"
    echo "clientpath smoke: verify pool saw no traffic"
    exit 1
fi
if ! echo "$cout" | grep -q 'failed 0,'; then
    rm -rf "$livedir"
    echo "clientpath smoke: batched run had handshake failures"
    exit 1
fi

echo "==> saturate smoke: sharded accept + split-schedule dispatch under -race, sweep digest reproducible"
s1=$("$livedir/pqbench-race" saturate -rate 40 -duration 1s -rungs 2 -shards 1,2 -resume |
    tee /dev/stderr | sed -n 's/.*sweep digest \([0-9a-f]*\).*/\1/p')
s2=$("$livedir/pqbench-race" saturate -rate 40 -duration 1s -rungs 2 -shards 1,2 -resume |
    sed -n 's/.*sweep digest \([0-9a-f]*\).*/\1/p')
if [ -z "$s1" ] || [ "$s1" != "$s2" ]; then
    rm -rf "$livedir"
    echo "saturate smoke: sweep digest not reproducible: '$s1' vs '$s2'"
    exit 1
fi

echo "==> dist smoke: coordinator/worker under -race, merged digest equals single-process"
"$livedir/pqbench-race" dist-coordinator -simulate -verify -workers 2 -workers-local 2 \
    -rate 80 -duration 1s -start-delay 50ms -heartbeat-timeout 2s
echo "==> dist smoke: kill one worker mid-run, reassignment must keep totals exact"
"$livedir/pqbench-race" dist-coordinator -simulate -verify -workers 2 -workers-local 2 \
    -rate 80 -duration 1s -start-delay 50ms \
    -heartbeat-timeout 400ms -kill-worker-after 500ms
rm -rf "$livedir"

echo "==> phases smoke: span traces + Prometheus /metrics end to end"
sh scripts/phases_smoke.sh

echo "==> timeline smoke: windowed telemetry artifacts, fleet merge digest-exact"
sh scripts/timeline_smoke.sh

echo "==> determinism spot check: pqbench all-kem, workers 1 vs 8"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/pqbench" ./cmd/pqbench
"$tmpdir/pqbench" all-kem -samples 3 -workers 1 >"$tmpdir/w1.txt" 2>/dev/null
"$tmpdir/pqbench" all-kem -samples 3 -workers 8 >"$tmpdir/w8.txt" 2>/dev/null
cmp "$tmpdir/w1.txt" "$tmpdir/w8.txt"

echo "OK"
