#!/bin/sh
# Benchmark regression gate: re-run `pqbench microbench` and compare the
# fresh numbers against the newest committed BENCH_*.json baseline.
#
#   sh scripts/bench_gate.sh          full gate: >10% ns/op regression or
#                                     any allocs/op growth fails
#   sh scripts/bench_gate.sh -short   CI gate: 100ms per kernel and
#                                     allocs/op only (shared runners have
#                                     noisy timing; allocation counts are
#                                     exact at any benchtime)
#
# The gate is advisory-by-absence: with no BENCH_*.json baseline yet it
# succeeds and says so, because the first PR that introduces the baseline
# has nothing to compare against.
set -eu

cd "$(dirname "$0")/.."

short=""
gate_flags=""
if [ "${1:-}" = "-short" ]; then
    short="-short"
    gate_flags="-allocs-only"
fi

base=$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1 || true)
if [ -z "$base" ]; then
    echo "bench_gate: no BENCH_*.json baseline committed yet; nothing to gate"
    exit 0
fi

go build -o bin/pqbench ./cmd/pqbench

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
# -live=false: loopback throughput is host wall-clock, never gated, and
# would only slow the gate down.
bin/pqbench microbench $short -live=false -out "$tmp"

bin/pqbench benchgate -old "$base" -new "$tmp" $gate_flags
