// Package pqtls is a from-scratch Go reproduction of "The Performance of
// Post-Quantum TLS 1.3" (Sosnowski et al., CoNEXT Companion '23): a TLS 1.3
// stack with pluggable classical, post-quantum, and hybrid key agreements
// and signature algorithms, the paper's three-node measurement testbed as a
// discrete-event simulation, and a benchmark harness that regenerates every
// table and figure of the evaluation.
//
// The package re-exports the stable public surface; implementations live in
// internal/ packages. Quick start:
//
//	client, server := net.Pipe()
//	cfg := ... // see examples/quickstart
//	go pqtls.ServerHandshake(server, serverCfg)
//	cli, err := pqtls.ClientHandshake(client, clientCfg)
package pqtls

import (
	"io"

	"pqtls/internal/harness"
	"pqtls/internal/kem"
	"pqtls/internal/netsim"
	"pqtls/internal/pki"
	"pqtls/internal/sig"
	"pqtls/internal/tls13"
)

// KEM is a key-encapsulation mechanism usable as a TLS 1.3 key agreement.
type KEM = kem.KEM

// SignatureScheme is a signature algorithm usable for certificates and the
// CertificateVerify handshake signature.
type SignatureScheme = sig.Scheme

// KEMByName returns one of the 23 named key agreements of the paper's
// Table 2a (e.g. "x25519", "kyber768", "p256_kyber512").
func KEMByName(name string) (KEM, error) { return kem.ByName(name) }

// KEMNames lists all registered key agreements.
func KEMNames() []string { return kem.Names() }

// SignatureByName returns one of the named signature algorithms of the
// paper's Tables 2b/4b (e.g. "rsa:2048", "dilithium2", "p256_falcon512").
func SignatureByName(name string) (SignatureScheme, error) { return sig.ByName(name) }

// SignatureNames lists all registered signature algorithms.
func SignatureNames() []string { return sig.Names() }

// TLS 1.3 endpoint API.
type (
	// Config carries suite selection and credentials for one endpoint.
	Config = tls13.Config
	// Client and Server are sans-IO handshake state machines.
	Client = tls13.Client
	Server = tls13.Server
	// Record is one TLS record.
	Record = tls13.Record
	// Session is client-side PSK resumption state from a NewSessionTicket.
	Session = tls13.Session
	// TicketStore is the shared session-ticket machinery: one store serves
	// every connection of a server runtime, so tickets issued on one
	// connection resume on another.
	TicketStore = tls13.TicketStore
	// BufferPolicy selects the server's flight-assembly behaviour.
	BufferPolicy = tls13.BufferPolicy
	// Hooks observe a handshake: phase spans, library CPU buckets, and
	// public-key operation charges. Install on Config.Hooks — an obs.Tracer
	// satisfies it, and tls13.MultiHooks stacks several observers.
	Hooks = tls13.Hooks
)

// NewTicketStore builds a ticket store over a fixed 16-byte key; instances
// sharing a key can resume each other's sessions. NewRandomTicketStore keys
// the store for this process's lifetime only.
func NewTicketStore(key [16]byte) *TicketStore    { return tls13.NewTicketStore(key) }
func NewRandomTicketStore() (*TicketStore, error) { return tls13.NewRandomTicketStore() }

// ReadRecord reads one TLS record from a byte stream; WriteRecords writes a
// flight. They let callers speak the record layer around the handshake API
// (e.g. reading the NewSessionTicket flight after ClientHandshake returns).
func ReadRecord(r io.Reader) (Record, error) { return tls13.ReadRecord(r) }
func WriteRecords(w io.Writer, records []Record) error {
	return tls13.WriteRecords(w, records)
}

// Server flight-assembly policies (Section 4 of the paper).
const (
	BufferDefault   = tls13.BufferDefault
	BufferImmediate = tls13.BufferImmediate
)

// NewClient and NewServer construct sans-IO handshakes.
func NewClient(cfg *Config) (*Client, error) { return tls13.NewClient(cfg) }
func NewServer(cfg *Config) (*Server, error) { return tls13.NewServer(cfg) }

// ClientHandshake and ServerHandshake run full handshakes over a byte
// stream (net.Conn, net.Pipe).
func ClientHandshake(conn io.ReadWriter, cfg *Config) (*Client, error) {
	return tls13.ClientHandshake(conn, cfg)
}

func ServerHandshake(conn io.ReadWriter, cfg *Config) (*Server, error) {
	return tls13.ServerHandshake(conn, cfg)
}

// PKI helpers.
type (
	// Certificate is a TLV-encoded certificate with a pluggable signature
	// algorithm.
	Certificate = pki.Certificate
	// CertPool is a set of trusted roots.
	CertPool = pki.Pool
)

// SelfSigned creates a self-signed root for the given scheme name.
func SelfSigned(subject, schemeName string) (*Certificate, []byte, error) {
	scheme, err := sig.ByName(schemeName)
	if err != nil {
		return nil, nil, err
	}
	return pki.SelfSigned(subject, scheme, nil)
}

// IssueCertificate signs subjectPub (a schemeName public key) with issuer.
func IssueCertificate(serial uint64, subject, schemeName string, subjectPub []byte,
	issuer *Certificate, issuerPriv []byte) (*Certificate, error) {
	return pki.Issue(serial, subject, schemeName, subjectPub, issuer, issuerPriv)
}

// NewCertPool creates a pool from root certificates.
func NewCertPool(roots ...*Certificate) *CertPool { return pki.NewPool(roots...) }

// Measurement harness (the paper's methodology).
type (
	// CampaignOptions and CampaignResult run 60-second-equivalent
	// handshake measurement campaigns (samples fan out across Workers).
	CampaignOptions = harness.CampaignOptions
	CampaignResult  = harness.CampaignResult
	// LinkConfig is a netem-style network emulation profile.
	LinkConfig = netsim.LinkConfig
	// Timing selects how per-handshake compute cost is accounted.
	Timing = harness.Timing
	// SweepConfig parameterizes the table/figure sweeps (samples, buffer
	// policy, worker count, timing mode).
	SweepConfig = harness.SweepConfig
	// KeyPool pre-generates client KEM key pairs for campaigns.
	KeyPool = harness.KeyPool
)

// Compute-timing modes for campaigns.
const (
	// TimingModel (the default) charges modeled per-operation costs to a
	// virtual clock: results are deterministic and independent of worker
	// count and host load.
	TimingModel = harness.TimingModel
	// TimingReal measures wall-clock compute; it forces sequential
	// execution since concurrent samples would perturb each other.
	TimingReal = harness.TimingReal
)

// RunCampaign measures one suite under one network profile.
func RunCampaign(opts CampaignOptions) (*CampaignResult, error) {
	return harness.RunCampaign(opts)
}

// NewKeyPool returns an empty client key-share pool.
func NewKeyPool() *KeyPool { return harness.NewKeyPool() }

// DefaultWorkers is the worker count used when CampaignOptions.Workers is
// zero (GOMAXPROCS).
func DefaultWorkers() int { return harness.DefaultWorkers() }

// Network scenarios of the paper's Table 4, plus the baseline testbed link.
var (
	ScenarioTestbed      = harness.ScenarioTestbed
	ScenarioHighLoss     = netsim.ScenarioHighLoss
	ScenarioLowBandwidth = netsim.ScenarioLowBandwidth
	ScenarioHighDelay    = netsim.ScenarioHighDelay
	ScenarioLTEM         = netsim.ScenarioLTEM
	Scenario5G           = netsim.Scenario5G
)
