module pqtls

go 1.22
